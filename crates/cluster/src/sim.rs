//! The master discrete-event simulation.
//!
//! One [`ClusterSim`] executes one configuration to completion. The event
//! loop owns the clock; everything else (kernels, engines, disks,
//! programs) is a state machine it drives:
//!
//! * **Dispatch** — a process consumes its program: touch runs are
//!   processed in bounded chunks against the node kernel (state updated
//!   eagerly, CPU time charged by scheduling the next dispatch); the
//!   first non-resident page raises a fault, whose I/O plan is priced by
//!   the node's FIFO paging disk, blocking the process until completion.
//! * **QuantumExpire** — the gang scheduler rotates its matrix and the
//!   paper's switch protocol runs on every node: STOP the outgoing
//!   ranks, `adaptive_page_out`, `adaptive_page_in`, CONT the incoming
//!   ranks (delayed to the bulk-read completion when adaptive page-in is
//!   active).
//! * **BgStart/BgTick** — in the last `bg_fraction` of a quantum the
//!   background writer flushes dirty pages whenever the paging disk is
//!   idle (paper §3.4's "lower priority").
//! * **BarrierRelease / IoDone** — wake blocked processes; STOP signals
//!   delivered while blocked take effect at the wake boundary, exactly
//!   like signals delivered to a process sleeping in the kernel.
//!
//! Simplification: a STOP delivered to a *running* rank takes effect at
//! its next dispatch boundary (≤ one chunk ≈ tens of milliseconds of
//! simulated time, against 5-minute quanta). Kernel state is updated
//! eagerly at dispatch, so the overlap has no correctness consequence.

use agp_core::PagingEngine;
use agp_disk::{Disk, DiskRequest};
use agp_faults::{DiskOutcome, FaultInjector, RecoveryPolicy, TimedFault};
use agp_gang::{GangScheduler, JobId, NodeSet};
use agp_mem::{Kernel, MemError, PageNum, ProcId, VmParams};
use agp_metrics::ActivityTrace;
use agp_net::Barrier;
use agp_obs::{ObsEvent, ObsLink, SwitchPhaseKind, SRC_CLUSTER};
use agp_sim::{EventQueue, SimDur, SimTime};
use agp_workload::{ProcessProgram, Step};

use crate::config::{ClusterConfig, ScheduleMode};
use crate::error::SimError;
use crate::monitor::{MetricsSnapshot, MonitorHub, MonitorTap};
use crate::proc::{BlockKind, CurStep, PState, SimProc};
use crate::result::{JobResult, NodeReport, RunResult};
use crate::watchdog::{self, Trip, Watchdog};
use agp_obs::flight;

/// One node's hardware + kernel software.
struct Node {
    kernel: Kernel,
    engine: PagingEngine,
    disk: Disk,
    trace: ActivityTrace,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    /// Continue executing process `p` (valid only at generation `gen`).
    Dispatch { p: usize, gen: u64 },
    /// Process `p`'s fault I/O completed.
    IoDone { p: usize, gen: u64 },
    /// A gang quantum ended (valid only at scheduler generation `sgen`).
    QuantumExpire { sgen: u64 },
    /// All ranks of `job` passed their barrier (valid only while the
    /// job's barrier episode is still `epoch` — a crash-requeue abandons
    /// the episode and bumps the epoch).
    BarrierRelease { job: usize, epoch: u64 },
    /// The release for `job` was dropped by an injected network fault;
    /// re-issue attempt `attempt` fires after the barrier timeout.
    BarrierRetry {
        job: usize,
        attempt: u32,
        epoch: u64,
    },
    /// Apply the `idx`-th entry of the precomputed timed-fault list
    /// (node crash/restart, memory-pressure burst).
    Chaos { idx: usize },
    /// Begin background writing for the active slot.
    BgStart { sgen: u64 },
    /// One background-writer burst on `node`.
    BgTick { node: usize, sgen: u64 },
    /// Telemetry gauge sample across all nodes (scheduled only when the
    /// config sets `sample_every` and an observer is attached).
    Sample,
    /// Emit a live [`MetricsSnapshot`] (scheduled only when a monitor tap
    /// is attached). The handler reads sim state and sends it down a
    /// channel; it mutates nothing and is excluded from the `events`
    /// counter, so a monitored run's [`RunResult`] is byte-identical to
    /// an unmonitored one.
    Monitor,
}

/// Profiling span for one event's handler (host-time accounting only).
fn perf_span(ev: &Event) -> agp_perf::Span {
    match ev {
        Event::Dispatch { .. } => agp_perf::Span::SimDispatch,
        Event::IoDone { .. } => agp_perf::Span::SimIoDone,
        Event::QuantumExpire { .. } => agp_perf::Span::SimQuantum,
        Event::BarrierRelease { .. } | Event::BarrierRetry { .. } => agp_perf::Span::SimBarrier,
        Event::Chaos { .. } => agp_perf::Span::SimChaos,
        Event::BgStart { .. } | Event::BgTick { .. } => agp_perf::Span::SimBgWrite,
        Event::Sample | Event::Monitor => agp_perf::Span::SimSample,
    }
}

/// With `check_invariants` on, sweep every node once per this many events
/// (in addition to the per-switch and per-job-completion sweeps). Frequent
/// enough to localize a corruption to a few thousand events, cheap enough
/// that test runs stay fast.
const INVARIANT_SWEEP_EVERY: u64 = 4096;

/// The simulation.
pub struct ClusterSim {
    cfg: ClusterConfig,
    queue: EventQueue<Event>,
    now: SimTime,
    nodes: Vec<Node>,
    procs: Vec<SimProc>,
    /// Proc indices per job.
    job_procs: Vec<Vec<usize>>,
    barriers: Vec<Barrier>,
    sched: GangScheduler,
    completions: Vec<Option<SimTime>>,
    /// Pending quantum-expiry instant (rescheduled when the scheduler
    /// generation moves without an actual switch).
    next_expire: Option<SimTime>,
    /// Next job to start in batch mode.
    batch_next: usize,
    switches: u64,
    events: u64,
    /// Invariant sweeps performed (see [`ClusterSim::verify_invariants`]).
    invariant_checks: u64,
    obs: ObsLink,
    /// Per-node observation links for gauge samples (tagged with the node
    /// index; empty until an observer is attached).
    gauge_obs: Vec<ObsLink>,
    /// Switch-event id counter (counts every `do_switch`, including the
    /// initial placement, unlike `switches`).
    obs_switches: u64,
    /// Fault injector, present only when the config carries a plan. With
    /// `None` no chaos code path runs and the event stream is identical
    /// to the seed simulation.
    injector: Option<FaultInjector>,
    /// Recovery knobs (the plan's, or defaults when no plan is set).
    recovery: RecoveryPolicy,
    /// Precomputed schedule of timed faults, sorted by instant;
    /// `Event::Chaos { idx }` indexes into it.
    timed_faults: Vec<(u64, TimedFault)>,
    /// Liveness per node; a crashed node rejects new work until restart.
    node_up: Vec<bool>,
    /// Barrier episode counter per job; bumped when a crash abandons an
    /// episode so in-flight release/retry events go stale.
    barrier_epoch: Vec<u64>,
    /// Jobs suspended by a node crash, waiting for their nodes to return.
    pending_requeue: Vec<usize>,
    /// Live-monitor tap: where periodic [`MetricsSnapshot`]s go, if
    /// anywhere. Picked up from [`MonitorHub`] at construction or set
    /// via [`ClusterSim::attach_monitor`].
    monitor: Option<MonitorTap>,
    /// Snapshot sequence counter.
    monitor_seq: u64,
    /// Label stamped into every snapshot (empty when unmonitored).
    monitor_label: String,
    /// Whether the *caller* attached an enabled observer. Gates `Sample`
    /// scheduling: the flight recorder self-attaches a sink when armed,
    /// and keying samples off this flag (not `obs.enabled()`) keeps an
    /// armed-but-unobserved run's event stream and `events` counter
    /// byte-identical to an unarmed one.
    caller_obs: bool,
    /// Scenario label stamped into incident dumps (experiment id or plan
    /// path); derived from the config shape when unset.
    scenario: String,
    /// Watchdog rule set, snapshotted from the armed flight recorder at
    /// run start (disarmed and inert otherwise).
    watchdog: Watchdog,
    /// Last instant each job made observable progress (dispatch, I/O
    /// completion, barrier release) — the job-stall rule's input.
    job_last_progress: Vec<SimTime>,
    /// A trip raised inside an event handler (recovery exhaustion);
    /// the main loop converts it into the aborting error between events,
    /// after the handler has left state coherent.
    pending_trip: Option<Trip>,
    /// When the last watchdog sweep ran — the time-based cadence's anchor.
    /// A quiet event queue (a wedged barrier re-issuing hourly) starves
    /// the event-count cadence, so sweeps are also due on sim-time
    /// advance (see [`Watchdog::time_cadence`]).
    last_sweep: SimTime,
}

impl ClusterSim {
    /// Build a simulation from a validated configuration.
    pub fn new(cfg: ClusterConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::InvalidConfig)?;
        let params = vm_params(&cfg);

        let injector = cfg
            .faults
            .as_ref()
            .map(|plan| FaultInjector::new(plan.clone(), cfg.nodes as usize));
        let recovery = injector
            .as_ref()
            .map(|i| i.recovery().clone())
            .unwrap_or_default();
        let timed_faults = injector.as_ref().map(|i| i.timed()).unwrap_or_default();
        if cfg.mode == ScheduleMode::Batch
            && timed_faults
                .iter()
                .any(|&(_, f)| matches!(f, TimedFault::Crash { .. }))
        {
            // Batch has no scheduler to compact around a dead node; the
            // crashed job would wedge the whole run.
            return Err(SimError::FaultPlan(
                "node_crash faults require gang mode".into(),
            ));
        }

        let mut nodes: Vec<Node> = (0..cfg.nodes)
            .map(|_| Node {
                kernel: Kernel::new(params.clone(), cfg.disk.blocks),
                engine: PagingEngine::new(cfg.policy),
                disk: Disk::new(cfg.disk.clone()),
                trace: ActivityTrace::new(cfg.trace_bucket),
            })
            .collect();

        let mut procs = Vec::new();
        let mut job_procs = Vec::new();
        let mut barriers = Vec::new();
        let mut sched = GangScheduler::new(cfg.nodes, cfg.quantum);

        for (j, job) in cfg.jobs.iter().enumerate() {
            let jid = JobId(j as u32);
            let n = job.workload.nprocs;
            sched
                .add_job(jid, NodeSet::first_n(n), job.quantum)
                .map_err(|e| SimError::Schedule {
                    job: job.name.clone(),
                    detail: e,
                })?;
            let mut members = Vec::new();
            for rank in 0..n {
                let pid = ProcId(procs.len() as u32);
                let seed = cfg.seed.wrapping_add((j as u64) * 7919);
                let program = ProcessProgram::new(job.workload, rank, seed);
                let node = rank as usize;
                nodes[node]
                    .kernel
                    .register_proc(pid, program.footprint_pages() as usize);
                members.push(procs.len());
                procs.push(SimProc::new(pid, jid, node, rank, program));
            }
            job_procs.push(members);
            // With a fault plan attached the barrier carries the plan's
            // timeout; without one, the stock barrier (same default) keeps
            // the construction path identical to the seed simulation.
            barriers.push(if injector.is_some() {
                Barrier::with_timeout(n, SimDur::from_us(recovery.barrier_timeout_us))
            } else {
                Barrier::new(n)
            });
        }

        let njobs = cfg.jobs.len();
        let nnodes = cfg.nodes as usize;
        Ok(ClusterSim {
            cfg,
            queue: EventQueue::with_capacity(1024),
            now: SimTime::ZERO,
            nodes,
            procs,
            job_procs,
            barriers,
            sched,
            completions: vec![None; njobs],
            next_expire: None,
            batch_next: 0,
            switches: 0,
            events: 0,
            invariant_checks: 0,
            obs: ObsLink::disabled(),
            gauge_obs: Vec::new(),
            obs_switches: 0,
            injector,
            recovery,
            timed_faults,
            node_up: vec![true; nnodes],
            barrier_epoch: vec![0; njobs],
            pending_requeue: Vec::new(),
            monitor: MonitorHub::current(),
            monitor_seq: 0,
            monitor_label: String::new(),
            caller_obs: false,
            scenario: String::new(),
            watchdog: Watchdog::default(),
            job_last_progress: vec![SimTime::ZERO; njobs],
            pending_trip: None,
            last_sweep: SimTime::ZERO,
        })
    }

    /// Attach an observation link before running: every node's kernel,
    /// engine and disk gets a clone tagged with its node index, every
    /// job's barrier one tagged with its job index, and the cluster layer
    /// itself emits under [`SRC_CLUSTER`]. The link's shared clock is
    /// advanced by the event loop.
    pub fn attach_observer(&mut self, link: &ObsLink) {
        self.caller_obs = link.enabled();
        self.distribute_observer(link);
    }

    /// Distribute `link` (spliced with the flight recorder's sink when
    /// one is armed) to every instrumented component. Shared by
    /// [`ClusterSim::attach_observer`] and the recorder's self-attach
    /// path, which must not count as a caller observer.
    fn distribute_observer(&mut self, link: &ObsLink) {
        let link = if flight::armed() {
            link.extended(flight::sink())
        } else {
            link.clone()
        };
        self.gauge_obs.clear();
        for (ni, node) in self.nodes.iter_mut().enumerate() {
            let tagged = link.with_src(ni as u32);
            node.kernel.set_observer(tagged.clone());
            node.engine.set_observer(tagged.clone());
            node.disk.set_observer(tagged.clone());
            self.gauge_obs.push(tagged);
        }
        for (j, barrier) in self.barriers.iter_mut().enumerate() {
            barrier.set_observer(link.with_src(j as u32));
        }
        self.obs = link.with_src(SRC_CLUSTER);
    }

    /// Label incident dumps with a scenario name (experiment id or plan
    /// path). Unset, dumps carry a label derived from the config shape.
    pub fn set_scenario(&mut self, name: &str) {
        self.scenario = name.to_string();
    }

    /// Attach a live-monitor tap directly (see [`MonitorHub::install`]
    /// for the process-global path): a [`MetricsSnapshot`] goes to `tx`
    /// every `every` of *sim* time, plus one final `done` snapshot.
    /// Monitoring is observation-transparent — the handler only reads
    /// sim state, and monitor events are excluded from the `events`
    /// counter — so the [`RunResult`] is identical to an unmonitored run
    /// (pinned by a test). A hung-up receiver silently drops snapshots.
    pub fn attach_monitor(&mut self, tx: std::sync::mpsc::Sender<MetricsSnapshot>, every: SimDur) {
        self.monitor = Some(MonitorTap {
            tx,
            every: SimDur::from_us(every.as_us().max(1)),
        });
    }

    /// Execute to completion.
    pub fn run(self) -> Result<RunResult, SimError> {
        let res = {
            // Root profiling span: everything below tiles against this
            // frame (host-time accounting only; no effect on sim state).
            let _perf = agp_perf::scope(agp_perf::Span::Run);
            self.run_inner()
        };
        // Fold this thread's samples into the process aggregate — the
        // experiment runners fan configurations out one worker thread
        // each, and those threads are gone by reporting time.
        agp_perf::flush();
        // Any abort freezes the armed flight ring so the incident window
        // survives the unwind. Watchdog trips already froze at trip time;
        // `freeze` is first-wins, so this is a no-op for them.
        if let Err(e) = &res {
            if flight::armed() {
                flight::freeze(
                    watchdog::trigger_for_error(e),
                    agp_sim::SimTime::from_us(watchdog::error_at_us(e)),
                );
            }
        }
        res
    }

    /// Incident-dump identity for this run: scenario label, seed, config
    /// fingerprint, job names, and the pid→job map.
    fn flight_meta(&self) -> flight::RunMeta {
        let scenario = if self.scenario.is_empty() {
            format!(
                "{}j/{}n {} {:?}",
                self.cfg.jobs.len(),
                self.cfg.nodes,
                self.cfg.policy.label(),
                self.cfg.mode
            )
        } else {
            self.scenario.clone()
        };
        flight::RunMeta {
            scenario,
            seed: self.cfg.seed,
            config_fp: watchdog::config_fingerprint(&self.cfg),
            jobs: self.cfg.jobs.iter().map(|j| j.name.clone()).collect(),
            pid_job: self.procs.iter().map(|p| (p.pid.0, p.job.0)).collect(),
        }
    }

    fn run_inner(mut self) -> Result<RunResult, SimError> {
        self.watchdog = Watchdog::from_flight();
        if flight::armed() {
            flight::note_run(self.flight_meta());
            // A run without a caller observer still feeds the recorder:
            // splice the flight sink into an otherwise-disabled fanout.
            if !self.obs.enabled() {
                self.distribute_observer(&ObsLink::disabled());
            }
        }
        match self.cfg.mode {
            ScheduleMode::Gang => {
                let plan = self
                    .sched
                    .start()
                    .ok_or_else(|| SimError::InvalidConfig("no jobs to schedule".into()))?;
                self.do_switch(plan.out, plan.inn, plan.quantum)?;
            }
            ScheduleMode::Batch => self.start_batch_job(0)?,
        }
        // Gate on the *caller's* observer, not `self.obs`: arming the
        // flight recorder enables `self.obs` for its own sink, and
        // scheduling Sample events off that would change the event count
        // (and thus the trace bytes) of an armed run.
        if self.cfg.sample_every.is_some() && self.caller_obs {
            self.queue.push(SimTime::ZERO, Event::Sample);
        }
        if self.monitor.is_some() {
            self.monitor_label = format!(
                "{}j/{}n {} {:?}",
                self.cfg.jobs.len(),
                self.cfg.nodes,
                self.cfg.policy.label(),
                self.cfg.mode
            );
            self.queue.push(SimTime::ZERO, Event::Monitor);
        }
        for idx in 0..self.timed_faults.len() {
            let at = SimTime::ZERO + SimDur::from_us(self.timed_faults[idx].0);
            self.queue.push(at, Event::Chaos { idx });
        }

        while let Some((t, ev)) = self.queue.pop() {
            self.now = t;
            self.obs.tick(t);
            // Monitor events are bookkeeping-invisible: excluding them
            // keeps `events` (and the invariant-sweep cadence keyed on
            // it) identical whether or not a monitor is attached.
            if !matches!(ev, Event::Monitor) {
                self.events += 1;
            }
            if t.since(SimTime::ZERO) > self.cfg.max_sim_time {
                return Err(SimError::SimTimeExceeded {
                    limit: self.cfg.max_sim_time,
                    at_us: t.since(SimTime::ZERO).as_us(),
                });
            }
            {
                let _ev_perf = agp_perf::scope(perf_span(&ev));
                self.handle(ev)?;
            }
            // Handlers that cannot return errors (I/O submission, barrier
            // retries) park exhaustion trips here; convert between events
            // so the abort sees coherent state.
            if let Some(trip) = self.pending_trip.take() {
                return Err(self.trip_error(trip));
            }
            if self.cfg.check_invariants && self.events.is_multiple_of(INVARIANT_SWEEP_EVERY) {
                self.verify_invariants("periodic sweep")?;
            }
            // Sweeps are due every N events *or* when sim time has
            // advanced past the time-based rules' cadence — a stalled
            // queue delivers events too rarely for the count alone.
            let sweep_due = self.events.is_multiple_of(INVARIANT_SWEEP_EVERY)
                || self
                    .watchdog
                    .time_cadence()
                    .is_some_and(|c| self.now.since(self.last_sweep) >= c);
            if self.watchdog.sweeps() && sweep_due {
                self.last_sweep = self.now;
                if let Some(trip) = self.watchdog.sweep(
                    self.now,
                    &self.job_last_progress,
                    &self.completions,
                    self.queue.len(),
                ) {
                    return Err(self.trip_error(trip));
                }
            }
            if self.completions.iter().all(|c| c.is_some()) {
                break;
            }
        }
        if !self.completions.iter().all(|c| c.is_some()) {
            let unfinished = self.completions.iter().filter(|c| c.is_none()).count() as u32;
            return Err(SimError::Deadlock {
                at_us: self.now.since(SimTime::ZERO).as_us(),
                unfinished,
            });
        }
        if self.cfg.check_invariants {
            self.verify_invariants("final state")?;
        }
        self.emit_snapshot(true);
        Ok(self.into_result())
    }

    /// Freeze the flight ring on a watchdog trip and build the abort
    /// error. The freeze happens here — at trip time — so the ring's last
    /// entry is the [`ObsEvent::WatchdogTrip`] marker the freeze appends.
    fn trip_error(&mut self, trip: Trip) -> SimError {
        flight::freeze(
            flight::IncidentTrigger::Watchdog {
                rule: trip.rule,
                value: trip.value,
                limit: trip.limit,
                detail: String::new(),
            },
            self.now,
        );
        SimError::WatchdogTrip {
            rule: trip.rule,
            value: trip.value,
            limit: trip.limit,
            at_us: self.now.since(SimTime::ZERO).as_us(),
        }
    }

    /// Send one [`MetricsSnapshot`] down the monitor tap, if attached.
    /// Reads sim state only; never mutates it.
    fn emit_snapshot(&mut self, done: bool) {
        let Some(tap) = &self.monitor else { return };
        let faults_major = self
            .nodes
            .iter()
            .map(|n| n.engine.stats().major_faults)
            .sum();
        let pages_in = self.nodes.iter().map(|n| n.disk.stats().pages_read).sum();
        let pages_out = self
            .nodes
            .iter()
            .map(|n| n.disk.stats().pages_written)
            .sum();
        let snap = MetricsSnapshot {
            label: self.monitor_label.clone(),
            seq: self.monitor_seq,
            sim_us: self.now.since(SimTime::ZERO).as_us(),
            events: self.events,
            switches: self.switches,
            faults_major,
            pages_in,
            pages_out,
            jobs_done: self.completions.iter().filter(|c| c.is_some()).count() as u64,
            jobs_total: self.completions.len() as u64,
            done,
        };
        if flight::armed() {
            flight::mirror_snapshot(&snap.to_json_line());
        }
        // A consumer that hung up is not the simulation's problem.
        let _ = tap.tx.send(snap);
        self.monitor_seq += 1;
    }

    /// One conservation/coherence sweep over every node, run when the
    /// configuration enables `check_invariants`:
    ///
    /// * [`Kernel::check_invariants`] — frame conservation
    ///   (`free + Σ rss == usable`), dirty ⟹ no swap copy, swap-owner-map
    ///   bijection with referencing pages, no leaked swap blocks;
    /// * [`PagingEngine::check_invariants`] — every adaptive page-in record
    ///   is a coherent run-length list, and records only exist when `ai`
    ///   is enabled.
    ///
    /// A violation is a simulator bug, not an operator error, so the run
    /// aborts with the diagnostic rather than continuing on corrupt state.
    fn verify_invariants(&mut self, context: &str) -> Result<(), SimError> {
        let at_us = self.now.since(SimTime::ZERO).as_us();
        for (ni, node) in self.nodes.iter().enumerate() {
            node.kernel
                .check_invariants()
                .map_err(|e| SimError::InvariantViolation {
                    context: context.to_string(),
                    node: Some(ni as u32),
                    at_us,
                    detail: e,
                })?;
            node.engine
                .check_invariants()
                .map_err(|e| SimError::InvariantViolation {
                    context: context.to_string(),
                    node: Some(ni as u32),
                    at_us,
                    detail: e,
                })?;
        }
        self.invariant_checks += 1;
        Ok(())
    }

    fn handle(&mut self, ev: Event) -> Result<(), SimError> {
        match ev {
            Event::Dispatch { p, gen } => {
                if self.procs[p].live(gen) && self.procs[p].state == PState::Runnable {
                    self.job_last_progress[self.procs[p].job.0 as usize] = self.now;
                    self.exec(p)?;
                }
            }
            Event::IoDone { p, gen } => {
                if self.procs[p].live(gen) {
                    let now = self.now;
                    self.job_last_progress[self.procs[p].job.0 as usize] = now;
                    let proc = &mut self.procs[p];
                    proc.unblock_io(now);
                    if proc.stop_pending {
                        proc.stop_pending = false;
                        proc.state = PState::Stopped;
                    } else if proc.state == PState::Blocked(BlockKind::Io) {
                        proc.state = PState::Runnable;
                        self.exec(p)?;
                    }
                }
            }
            Event::QuantumExpire { sgen } => {
                if sgen == self.sched.generation() {
                    if let Some(plan) = self.sched.rotate() {
                        self.do_switch(plan.out, plan.inn, plan.quantum)?;
                    }
                }
            }
            Event::BarrierRelease { job, epoch } => {
                if epoch == self.barrier_epoch[job] {
                    self.job_last_progress[job] = self.now;
                    self.release_barrier(job)?;
                }
            }
            Event::BarrierRetry {
                job,
                attempt,
                epoch,
            } => self.barrier_retry(job, attempt, epoch)?,
            Event::Chaos { idx } => self.apply_timed_fault(idx)?,
            Event::BgStart { sgen } => {
                if sgen == self.sched.generation() {
                    for ni in 0..self.nodes.len() {
                        let node = &mut self.nodes[ni];
                        if let Some(pid) = node.engine.running() {
                            if node.kernel.proc(pid).is_ok() {
                                node.engine.start_bgwrite(pid);
                                self.queue.push(self.now, Event::BgTick { node: ni, sgen });
                            }
                        }
                    }
                }
            }
            Event::BgTick { node, sgen } => {
                if sgen == self.sched.generation() {
                    self.bg_tick(node)?;
                }
            }
            Event::Sample => {
                self.sample_gauges();
                if let Some(every) = self.cfg.sample_every {
                    self.queue.push(self.now + every, Event::Sample);
                }
            }
            Event::Monitor => {
                self.emit_snapshot(false);
                if let Some(tap) = &self.monitor {
                    let every = tap.every;
                    self.queue.push(self.now + every, Event::Monitor);
                }
            }
        }
        Ok(())
    }

    /// Emit one telemetry snapshot per node: a [`ObsEvent::NodeGauge`]
    /// with memory/disk/background-writer state, then one
    /// [`ObsEvent::ProcGauge`] per registered process (in pid order, so
    /// the stream is deterministic).
    fn sample_gauges(&mut self) {
        let now = self.now;
        for (ni, node) in self.nodes.iter().enumerate() {
            let Some(obs) = self.gauge_obs.get(ni) else {
                return;
            };
            let dirty_pages: u64 = node
                .kernel
                .procs_rss()
                .filter_map(|(pid, _)| node.kernel.proc(pid).ok())
                .map(|pm| pm.pt.dirty_resident() as u64)
                .sum();
            obs.emit(now, || ObsEvent::NodeGauge {
                free_frames: node.kernel.free_frames() as u64,
                dirty_pages,
                disk_backlog_us: node.disk.busy_until().since(now).as_us(),
                disk_busy_us: node.disk.stats().busy.as_us(),
                bg_cleaned: node.engine.bg_cleaned_pages(),
            });
            for (pid, rss) in node.kernel.procs_rss() {
                let dirty = node
                    .kernel
                    .proc(pid)
                    .map(|pm| pm.pt.dirty_resident() as u64)
                    .unwrap_or(0);
                obs.emit(now, || ObsEvent::ProcGauge {
                    pid: pid.0,
                    resident: rss as u64,
                    dirty,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Process execution
    // ------------------------------------------------------------------

    /// Run process `p` from its current position until it blocks, yields
    /// CPU (schedules its next dispatch), stops, or finishes.
    fn exec(&mut self, p: usize) -> Result<(), SimError> {
        let now = self.now;
        if self.procs[p].stop_pending {
            let proc = &mut self.procs[p];
            proc.stop_pending = false;
            proc.state = PState::Stopped;
            return Ok(());
        }
        loop {
            // Phase 1: continue a partial touch run.
            if let Some(CurStep::Touch {
                first,
                len,
                done,
                write,
                cpu_per_page,
            }) = self.procs[p].cur
            {
                let pid = self.procs[p].pid;
                let ni = self.procs[p].node;
                let remaining = (len - done) as usize;
                let chunk = remaining.min(self.cfg.chunk_pages as usize);
                let (hits, fault) = self.nodes[ni]
                    .kernel
                    .touch_run(pid, PageNum(first + done), chunk, write, now)
                    .map_err(mem_err("touch_run", ni, now))?;
                let cpu = cpu_per_page * hits as u64;
                let new_done = done + hits as u32;

                match fault {
                    None => {
                        if new_done == len {
                            self.procs[p].cur = None;
                        } else {
                            self.procs[p].cur = Some(CurStep::Touch {
                                first,
                                len,
                                done: new_done,
                                write,
                                cpu_per_page,
                            });
                        }
                        if cpu.as_us() > 0 {
                            let gen = self.procs[p].gen;
                            self.queue.push(now + cpu, Event::Dispatch { p, gen });
                            return Ok(());
                        }
                        continue;
                    }
                    Some(_) => {
                        // Fault at page first+new_done, occurring after the
                        // CPU burn of the hits that preceded it.
                        self.procs[p].cur = Some(CurStep::Touch {
                            first,
                            len,
                            done: new_done,
                            write,
                            cpu_per_page,
                        });
                        let t_fault = now + cpu;
                        let fpage = PageNum(first + new_done);
                        let plan = {
                            let node = &mut self.nodes[ni];
                            node.engine
                                .on_fault(&mut node.kernel, pid, fpage, t_fault)
                                .map_err(mem_err("on_fault", ni, t_fault))?
                        };
                        let mut completion = t_fault;
                        if !plan.writes.is_empty() {
                            let req = DiskRequest::write(plan.writes.clone());
                            let pages = req.pages();
                            let c = self.submit_io(ni, t_fault, &req);
                            self.nodes[ni].trace.record_out(c, pages);
                            completion = completion.max(c);
                        }
                        if !plan.reads.is_empty() {
                            let req = DiskRequest::read(plan.reads.clone());
                            let pages = req.pages();
                            let c = self.submit_io(ni, t_fault, &req);
                            self.nodes[ni].trace.record_in(c, pages);
                            completion = completion.max(c);
                        }
                        if completion > t_fault {
                            self.obs.emit(t_fault, || ObsEvent::FaultService {
                                pid: pid.0,
                                page: fpage.0,
                                wait_us: completion.since(t_fault).as_us(),
                            });
                            self.procs[p].block_io(now);
                            let gen = self.procs[p].gen;
                            self.queue.push(completion, Event::IoDone { p, gen });
                            return Ok(());
                        }
                        // Pure zero-fill: the page is mapped; charge any
                        // CPU and keep going.
                        if cpu.as_us() > 0 {
                            let gen = self.procs[p].gen;
                            self.queue.push(t_fault, Event::Dispatch { p, gen });
                            return Ok(());
                        }
                        continue;
                    }
                }
            }

            // Phase 2: pull the next program step.
            let step = self.procs[p].program.next_step();
            match step {
                None => {
                    self.finish_proc(p)?;
                    return Ok(());
                }
                Some(Step::Touch {
                    first,
                    len,
                    write,
                    cpu_per_page,
                }) => {
                    self.procs[p].cur = Some(CurStep::Touch {
                        first,
                        len,
                        done: 0,
                        write,
                        cpu_per_page,
                    });
                }
                Some(Step::Compute(d)) => {
                    let gen = self.procs[p].gen;
                    self.queue.push(now + d, Event::Dispatch { p, gen });
                    return Ok(());
                }
                Some(Step::Exchange { bytes }) => {
                    let d = self.cfg.net.xfer_dur(bytes);
                    let gen = self.procs[p].gen;
                    self.queue.push(now + d, Event::Dispatch { p, gen });
                    return Ok(());
                }
                Some(Step::AllToAll { bytes_per_pair }) => {
                    let n = self.procs[p].program.spec().nprocs;
                    let d = self.cfg.net.alltoall_dur(n, bytes_per_pair);
                    let gen = self.procs[p].gen;
                    self.queue.push(now + d, Event::Dispatch { p, gen });
                    return Ok(());
                }
                Some(Step::Barrier) => {
                    let job = self.procs[p].job.0 as usize;
                    let rank = self.procs[p].rank;
                    self.procs[p].state = PState::Blocked(BlockKind::Barrier);
                    if let Some(release) = self.barriers[job].arrive(rank, now, &self.cfg.net) {
                        let epoch = self.barrier_epoch[job];
                        let dropped = self.injector.as_mut().is_some_and(|inj| {
                            inj.barrier_dropped(job, now.since(SimTime::ZERO).as_us())
                        });
                        if dropped {
                            // The release message is lost; the ranks sit in
                            // the barrier until its timeout re-issues it.
                            let timeout = SimDur::from_us(self.recovery.barrier_timeout_us);
                            self.queue.push(
                                release + timeout,
                                Event::BarrierRetry {
                                    job,
                                    attempt: 1,
                                    epoch,
                                },
                            );
                        } else {
                            self.queue
                                .push(release, Event::BarrierRelease { job, epoch });
                        }
                    }
                    return Ok(());
                }
                Some(Step::EndIteration(i)) => {
                    if i > 0 {
                        self.procs[p].iterations_done = i;
                    }
                }
            }
        }
    }

    fn release_barrier(&mut self, job: usize) -> Result<(), SimError> {
        let members = self.job_procs[job].clone();
        for p in members {
            let proc = &mut self.procs[p];
            if proc.state == PState::Blocked(BlockKind::Barrier) {
                if proc.stop_pending {
                    proc.stop_pending = false;
                    proc.state = PState::Stopped;
                } else {
                    proc.state = PState::Runnable;
                    let gen = proc.gen;
                    self.queue.push(self.now, Event::Dispatch { p, gen });
                }
            }
        }
        Ok(())
    }

    fn finish_proc(&mut self, p: usize) -> Result<(), SimError> {
        let now = self.now;
        let proc = &mut self.procs[p];
        proc.state = PState::Done;
        proc.finished_at = Some(now);
        proc.unblock_io(now);
        let job = proc.job;
        let done = self.job_procs[job.0 as usize]
            .iter()
            .all(|&q| self.procs[q].state == PState::Done);
        if done {
            self.on_job_done(job)?;
        }
        Ok(())
    }

    fn on_job_done(&mut self, job: JobId) -> Result<(), SimError> {
        let j = job.0 as usize;
        let now = self.now;
        self.completions[j] = Some(now);
        // The job's processes exit: release their memory and swap.
        for &p in &self.job_procs[j] {
            let pid = self.procs[p].pid;
            let ni = self.procs[p].node;
            let node = &mut self.nodes[ni];
            node.kernel
                .unregister_proc(pid)
                .map_err(mem_err("unregister", ni, now))?;
            node.engine.forget_proc(pid);
            debug_assert!(node.kernel.check_invariants().is_ok());
        }
        if self.cfg.check_invariants {
            self.verify_invariants("job completion")?;
        }
        match self.cfg.mode {
            ScheduleMode::Batch => {
                self.batch_next += 1;
                if self.batch_next < self.cfg.jobs.len() {
                    self.start_batch_job(self.batch_next)?;
                }
            }
            ScheduleMode::Gang => {
                let saved_expire = self.next_expire;
                if let Some(plan) = self.sched.job_finished(job) {
                    // The active job finished: switch to the next slot now
                    // rather than idling out the quantum.
                    self.do_switch(plan.out, plan.inn, plan.quantum)?;
                } else if !self.sched.is_empty() && self.sched.matrix().slots() >= 2 {
                    // An inactive job finished; the scheduler generation
                    // moved, so re-arm the pending expiry under the new
                    // generation.
                    if let Some(at) = saved_expire {
                        let sgen = self.sched.generation();
                        self.queue
                            .push(at.max(self.now), Event::QuantumExpire { sgen });
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scheduling protocol
    // ------------------------------------------------------------------

    fn start_batch_job(&mut self, j: usize) -> Result<(), SimError> {
        let now = self.now;
        let members = self.job_procs[j].clone();
        for &p in &members {
            let pid = self.procs[p].pid;
            let ni = self.procs[p].node;
            let node = &mut self.nodes[ni];
            node.engine.set_running(Some(pid));
            node.kernel
                .quantum_started(pid)
                .map_err(mem_err("quantum_started", ni, now))?;
            self.cont_proc(p, now);
        }
        Ok(())
    }

    /// The paper's coordinated switch: STOP the outgoing ranks, run the
    /// adaptive-paging API on every node, CONT the incoming ranks.
    fn do_switch(
        &mut self,
        out: Vec<JobId>,
        inn: Vec<JobId>,
        quantum: SimDur,
    ) -> Result<(), SimError> {
        let _perf = agp_perf::scope(agp_perf::Span::SimSwitch);
        let now = self.now;
        if !out.is_empty() {
            self.switches += 1;
        }
        // Ends of the write (page-out) and read (page-in) drains across
        // all nodes, for the switch-phase decomposition.
        let mut out_end = now;
        let mut in_end = now;

        // 1. SIGSTOP every rank of every outgoing job.
        for &job in &out {
            let members = self.job_procs[job.0 as usize].clone();
            for p in members {
                self.stop_proc(p);
            }
        }
        // Background writing always halts at the switch (paper §3.4).
        for node in &mut self.nodes {
            node.engine.stop_bgwrite();
        }

        // 2. Per node: adaptive_page_out / adaptive_page_in around the
        //    incoming rank, then SIGCONT it.
        for &job in &inn {
            let members = self.job_procs[job.0 as usize].clone();
            for &p in &members {
                if self.procs[p].state == PState::Done {
                    continue;
                }
                let in_pid = self.procs[p].pid;
                let ni = self.procs[p].node;
                // The outgoing rank sharing this node, if it still owns
                // memory.
                let out_pid = out
                    .iter()
                    .flat_map(|&oj| self.job_procs[oj.0 as usize].iter())
                    .map(|&q| &self.procs[q])
                    .find(|q| q.node == ni)
                    .map(|q| q.pid)
                    .filter(|&pid| self.nodes[ni].kernel.proc(pid).is_ok());

                if let Some(out_pid) = out_pid {
                    let plan = {
                        let node = &mut self.nodes[ni];
                        node.engine
                            .adaptive_page_out(&mut node.kernel, out_pid, in_pid, None)
                            .map_err(mem_err("adaptive_page_out", ni, now))?
                    };
                    if !plan.writes.is_empty() {
                        let req = DiskRequest::write(plan.writes.clone());
                        let pages = req.pages();
                        let c = self.submit_io(ni, now, &req);
                        self.nodes[ni].trace.record_out(c, pages);
                        out_end = out_end.max(c);
                    }
                } else {
                    self.nodes[ni].engine.set_running(Some(in_pid));
                }
                self.nodes[ni]
                    .kernel
                    .quantum_started(in_pid)
                    .map_err(mem_err("quantum_started", ni, now))?;

                let mut resume_at = now;
                let plan_in = {
                    let node = &mut self.nodes[ni];
                    node.engine
                        .adaptive_page_in(&mut node.kernel, in_pid, now)
                        .map_err(mem_err("adaptive_page_in", ni, now))?
                };
                if !plan_in.reads.is_empty() {
                    let req = DiskRequest::read(plan_in.reads.clone());
                    let pages = req.pages();
                    let c = self.submit_io(ni, now, &req);
                    self.nodes[ni].trace.record_in(c, pages);
                    // The induced faults of Fig. 4: the process starts
                    // computing once its recorded working set is back.
                    resume_at = c;
                    in_end = in_end.max(c);
                }
                self.cont_proc(p, resume_at);
            }
        }

        // Decompose the switch into the protocol's four phases. STOP and
        // CONT delivery are instantaneous in this model (signals cost no
        // simulated time); the page-out phase runs until the last write
        // drain, the page-in phase from there to the last read drain —
        // so the four durations sum to the total by construction.
        let sw = self.obs_switches;
        self.obs_switches += 1;
        let out_end = out_end.max(now);
        let in_end = in_end.max(out_end);
        let pageout_us = out_end.since(now).as_us();
        let pagein_us = in_end.since(out_end).as_us();
        if self.cfg.check_invariants {
            // Phase decomposition must tile the switch exactly: STOP and
            // CONT are instantaneous, so page-out + page-in == total. This
            // holds by construction today; the check guards refactors that
            // overlap the drains or add phases without re-deriving the sum.
            let total_us = in_end.since(now).as_us();
            if pageout_us.checked_add(pagein_us) != Some(total_us) {
                return Err(SimError::InvariantViolation {
                    context: format!("switch {sw}"),
                    node: None,
                    at_us: now.since(SimTime::ZERO).as_us(),
                    detail: format!(
                        "phase durations {pageout_us} + {pagein_us} µs do not sum to \
                         switch total {total_us} µs"
                    ),
                });
            }
            self.verify_invariants("post-switch")?;
        }
        if self.obs.enabled() {
            let phases = [
                (SwitchPhaseKind::Stop, 0),
                (SwitchPhaseKind::PageOut, pageout_us),
                (SwitchPhaseKind::PageIn, pagein_us),
                (SwitchPhaseKind::Cont, 0),
            ];
            for (phase, dur_us) in phases {
                self.obs.emit(now, || ObsEvent::SwitchPhase {
                    switch: sw,
                    phase,
                    dur_us,
                });
            }
            self.obs.emit(now, || ObsEvent::SwitchDone {
                switch: sw,
                total_us: in_end.since(now).as_us(),
            });
        }

        // 3. Arm the next expiry (only meaningful with ≥ 2 slots) and the
        //    background-writing window.
        if self.sched.matrix().slots() >= 2 {
            let sgen = self.sched.generation();
            let at = now + quantum;
            self.queue.push(at, Event::QuantumExpire { sgen });
            self.next_expire = Some(at);
            if self.cfg.policy.bg_write {
                let lead = quantum.mul_f64(1.0 - self.cfg.policy.bg_fraction.clamp(0.0, 1.0));
                self.queue.push(now + lead, Event::BgStart { sgen });
            }
        } else {
            self.next_expire = None;
        }
        Ok(())
    }

    fn stop_proc(&mut self, p: usize) {
        let proc = &mut self.procs[p];
        match proc.state {
            PState::Runnable | PState::Blocked(_) => proc.stop_pending = true,
            PState::Stopped | PState::Done => {}
        }
    }

    fn cont_proc(&mut self, p: usize, resume_at: SimTime) {
        let proc = &mut self.procs[p];
        proc.stop_pending = false;
        if proc.state == PState::Stopped {
            proc.state = PState::Runnable;
            let gen = proc.bump_gen();
            self.queue.push(resume_at, Event::Dispatch { p, gen });
        }
        // Runnable / Blocked ranks continue via their in-flight events;
        // Done ranks stay done.
    }

    fn bg_tick(&mut self, ni: usize) -> Result<(), SimError> {
        let now = self.now;
        let sgen = self.sched.generation();
        if !self.nodes[ni].engine.bgwrite_active() {
            return Ok(());
        }
        // "Lower priority": only write when the paging disk is idle.
        if self.nodes[ni].disk.is_idle(now) {
            let ext = {
                let node = &mut self.nodes[ni];
                node.engine.bgwrite_tick(&mut node.kernel).map_err(mem_err(
                    "bgwrite_tick",
                    ni,
                    now,
                ))?
            };
            if !ext.is_empty() {
                let req = DiskRequest::write(ext);
                let pages = req.pages();
                let c = self.submit_io(ni, now, &req);
                self.nodes[ni].trace.record_out(c, pages);
            }
        }
        self.queue
            .push(now + self.cfg.bg_tick, Event::BgTick { node: ni, sgen });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Fault injection & recovery
    // ------------------------------------------------------------------

    /// Submit a disk request through the fault injector: an injected
    /// error burns the device for the command overhead, then the request
    /// is retried after capped exponential backoff ([`RecoveryPolicy`]);
    /// an injected latency spike inflates this one request's service
    /// time. With no injector this is exactly `Disk::submit`.
    ///
    /// Returns the completion instant of the finally-successful attempt.
    fn submit_io(&mut self, ni: usize, at: SimTime, req: &DiskRequest) -> SimTime {
        let injector = &mut self.injector;
        let node = &mut self.nodes[ni];
        let Some(inj) = injector.as_mut() else {
            return node.disk.submit(at, req);
        };
        if req.is_empty() {
            return node.disk.submit(at, req);
        }
        let mut t = at;
        let mut attempt: u32 = 0;
        loop {
            // The injected errors model transient media failures: after
            // the configured retries the attempt is forced to succeed, so
            // a pathological plan cannot livelock the simulation.
            let exhausted = self.recovery.io_exhausted(attempt);
            let outcome = if exhausted {
                DiskOutcome::Ok
            } else {
                inj.disk_outcome(ni, t.since(SimTime::ZERO).as_us())
            };
            match outcome {
                DiskOutcome::Ok => {
                    // Exhaustion (a retry budget fully burned, success
                    // forced) is an incident, but only the armed watchdog
                    // observes it — unarmed runs keep their exact trace.
                    if exhausted && attempt > 0 && self.watchdog.armed() {
                        self.obs.emit(t, || ObsEvent::IoExhausted {
                            node: ni as u32,
                            attempts: attempt,
                        });
                        if self.watchdog.trips_on_exhaustion() {
                            self.pending_trip = Some(Trip {
                                rule: agp_obs::WatchdogRule::RecoveryExhausted,
                                value: u64::from(attempt),
                                limit: u64::from(self.recovery.io_retries),
                            });
                        }
                    }
                    return node.disk.submit(t, req);
                }
                DiskOutcome::Slow(penalty_us) => {
                    return node.disk.submit_slowed(t, req, penalty_us)
                }
                DiskOutcome::Error => {
                    let failed_at = node.disk.submit_failing(t, req);
                    let backoff_us = self.recovery.backoff_us(attempt);
                    attempt += 1;
                    self.obs.emit(t, || ObsEvent::IoRetry {
                        node: ni as u32,
                        attempt,
                        backoff_us,
                    });
                    // Graceful degradation: a flaky disk makes the bulk
                    // replay reads of adaptive page-in a liability, so the
                    // node falls back to demand paging.
                    let errors = inj.disk_errors_on(ni);
                    if errors >= u64::from(self.recovery.ai_degrade_after)
                        && node.engine.cfg().adaptive_in
                    {
                        node.engine.set_adaptive_in(false);
                        self.obs.emit(t, || ObsEvent::AiDegraded {
                            node: ni as u32,
                            errors,
                        });
                    }
                    t = failed_at + SimDur::from_us(backoff_us);
                }
            }
        }
    }

    /// A barrier release re-issue fired: the original release message was
    /// dropped by an injected network fault and the barrier timed out.
    /// Stale epochs (the episode was abandoned by a crash-requeue) are
    /// ignored; after `barrier_retries` re-issues the release is forced
    /// through — the injected fault is transient, delivery is guaranteed
    /// eventually.
    fn barrier_retry(&mut self, job: usize, attempt: u32, epoch: u64) -> Result<(), SimError> {
        if epoch != self.barrier_epoch[job] {
            return Ok(());
        }
        let now = self.now;
        let timeout_us = self.recovery.barrier_timeout_us;
        self.obs.emit(now, || ObsEvent::BarrierTimeout {
            job: job as u32,
            attempt,
            waited_us: timeout_us.saturating_mul(u64::from(attempt)),
        });
        let drop_again = attempt <= self.recovery.barrier_retries
            && self
                .injector
                .as_mut()
                .is_some_and(|inj| inj.barrier_dropped(job, now.since(SimTime::ZERO).as_us()));
        if drop_again {
            self.queue.push(
                now + SimDur::from_us(timeout_us),
                Event::BarrierRetry {
                    job,
                    attempt: attempt + 1,
                    epoch,
                },
            );
            return Ok(());
        }
        // The release goes through; if it was *forced* (every re-issue in
        // the budget dropped), the armed watchdog records the exhaustion.
        if self.recovery.barrier_exhausted(attempt) && self.watchdog.armed() {
            self.obs.emit(now, || ObsEvent::BarrierExhausted {
                job: job as u32,
                attempts: attempt,
            });
            if self.watchdog.trips_on_exhaustion() {
                self.pending_trip = Some(Trip {
                    rule: agp_obs::WatchdogRule::RecoveryExhausted,
                    value: u64::from(attempt),
                    limit: u64::from(self.recovery.barrier_retries),
                });
            }
        }
        self.release_barrier(job)
    }

    fn apply_timed_fault(&mut self, idx: usize) -> Result<(), SimError> {
        match self.timed_faults[idx].1 {
            TimedFault::Crash { node } => self.crash_node(node as usize),
            TimedFault::Restart { node } => self.restart_node(node as usize),
            TimedFault::MemPressure { node, pages } => self.mem_pressure(node as usize, pages),
        }
    }

    /// A node dies. Its volatile state (kernel, paging engine, resident
    /// sets) is gone; the disk hardware and the activity trace survive.
    /// Every unfinished job with a rank there is torn down cluster-wide —
    /// surviving ranks release their memory, the barrier episode is
    /// abandoned — and queued for re-admission at restart. The gang
    /// schedule compacts around the loss instead of wedging: if the dead
    /// node's job held the active slot, the next surviving job switches
    /// in immediately.
    fn crash_node(&mut self, ni: usize) -> Result<(), SimError> {
        if !self.node_up[ni] {
            return Ok(());
        }
        let now = self.now;
        self.node_up[ni] = false;

        // Victim jobs: any unfinished job with a rank on the dead node
        // (completed jobs already released their memory everywhere).
        let victims: Vec<usize> = (0..self.job_procs.len())
            .filter(|&j| {
                self.completions[j].is_none()
                    && self.job_procs[j].iter().any(|&p| self.procs[p].node == ni)
            })
            .collect();
        self.obs.emit(now, || ObsEvent::NodeCrash {
            node: ni as u32,
            jobs_suspended: victims.len() as u32,
        });

        for &j in &victims {
            let seed = self.cfg.seed.wrapping_add((j as u64) * 7919);
            let spec = self.cfg.jobs[j].workload;
            let members = self.job_procs[j].clone();
            for &p in &members {
                let pid = self.procs[p].pid;
                let pn = self.procs[p].node;
                if pn != ni && self.nodes[pn].kernel.proc(pid).is_ok() {
                    // Surviving rank: release its memory and swap like a
                    // normal exit (the job restarts from scratch).
                    let node = &mut self.nodes[pn];
                    node.kernel
                        .unregister_proc(pid)
                        .map_err(mem_err("unregister", pn, now))?;
                    node.engine.forget_proc(pid);
                }
                let proc = &mut self.procs[p];
                let rank = proc.rank;
                proc.bump_gen();
                proc.unblock_io(now);
                proc.stop_pending = false;
                proc.state = PState::Stopped;
                proc.cur = None;
                proc.iterations_done = 0;
                proc.program = ProcessProgram::new(spec, rank, seed);
            }
            // Abandon the barrier episode; in-flight release/retry events
            // for the old epoch go stale.
            self.barriers[j].reset();
            self.barrier_epoch[j] += 1;
            self.pending_requeue.push(j);
        }

        // The crashed node reboots with empty memory. Re-attach the
        // node-tagged observer so telemetry keeps flowing after restart.
        {
            let node = &mut self.nodes[ni];
            node.kernel = Kernel::new(vm_params(&self.cfg), self.cfg.disk.blocks);
            node.engine = PagingEngine::new(self.cfg.policy);
            if let Some(tagged) = self.gauge_obs.get(ni) {
                node.kernel.set_observer(tagged.clone());
                node.engine.set_observer(tagged.clone());
            }
        }

        // Pull the victims out of the gang schedule. Removals are batched
        // before any switch so a forced switch can only land on a
        // surviving job; `job_finished` hands back a plan exactly when the
        // active slot empties, and a later removal of the newly activated
        // job supersedes the earlier plan.
        let saved_expire = self.next_expire;
        let mut plan = None;
        let mut removed_any = false;
        for &j in &victims {
            let jid = JobId(j as u32);
            if !self.sched.has_job(jid) {
                continue;
            }
            removed_any = true;
            if let Some(p) = self.sched.job_finished(jid) {
                plan = Some(p);
            }
        }
        if let Some(plan) = plan {
            self.do_switch(plan.out, plan.inn, plan.quantum)?;
        } else if removed_any {
            if self.sched.is_active() && self.sched.matrix().slots() >= 2 {
                // The active job survived but the scheduler generation
                // moved; re-arm the pending expiry under the new one.
                if let Some(at) = saved_expire {
                    let at = at.max(now);
                    let sgen = self.sched.generation();
                    self.queue.push(at, Event::QuantumExpire { sgen });
                    self.next_expire = Some(at);
                }
            } else {
                self.next_expire = None;
            }
        }
        Ok(())
    }

    /// The crashed node returns with empty memory. Suspended jobs whose
    /// nodes are all back up are re-admitted to the gang schedule and
    /// restart from their first instruction (the model has no
    /// checkpointing); the rest keep waiting for their other nodes.
    fn restart_node(&mut self, ni: usize) -> Result<(), SimError> {
        if self.node_up[ni] {
            return Ok(());
        }
        let now = self.now;
        self.node_up[ni] = true;

        let pending = std::mem::take(&mut self.pending_requeue);
        let mut ready = Vec::new();
        for j in pending {
            let all_up = self.job_procs[j]
                .iter()
                .all(|&p| self.node_up[self.procs[p].node]);
            if all_up {
                ready.push(j);
            } else {
                self.pending_requeue.push(j);
            }
        }
        self.obs.emit(now, || ObsEvent::NodeRestart {
            node: ni as u32,
            jobs_requeued: ready.len() as u32,
        });

        for &j in &ready {
            let jid = JobId(j as u32);
            let spec = &self.cfg.jobs[j];
            self.sched
                .add_job(jid, NodeSet::first_n(spec.workload.nprocs), spec.quantum)
                .map_err(|e| SimError::Schedule {
                    job: spec.name.clone(),
                    detail: e,
                })?;
            for &p in &self.job_procs[j] {
                let pid = self.procs[p].pid;
                let pn = self.procs[p].node;
                let pages = self.procs[p].program.footprint_pages() as usize;
                self.nodes[pn].kernel.register_proc(pid, pages);
            }
            self.obs
                .emit(now, || ObsEvent::JobRequeued { job: j as u32 });
        }

        if !ready.is_empty() {
            if !self.sched.is_active() {
                // The crash drained the schedule; restart it.
                if let Some(plan) = self.sched.start() {
                    self.do_switch(plan.out, plan.inn, plan.quantum)?;
                }
            } else if self.sched.matrix().slots() >= 2 {
                // A survivor kept running; `add_job` moved the generation,
                // so re-arm the expiry under it. With no pending expiry
                // (the survivor ran alone) the rotation fires immediately
                // and the requeued jobs get their first quantum.
                let at = self.next_expire.unwrap_or(now).max(now);
                let sgen = self.sched.generation();
                self.queue.push(at, Event::QuantumExpire { sgen });
                self.next_expire = Some(at);
            }
        }
        Ok(())
    }

    /// A transient memory-pressure burst (the model's stand-in for an
    /// external allocation) forces an immediate reclaim of `pages`
    /// frames; dirty victims are written out through the fault-aware I/O
    /// path.
    fn mem_pressure(&mut self, ni: usize, pages: u64) -> Result<(), SimError> {
        if !self.node_up[ni] {
            return Ok(());
        }
        let now = self.now;
        let writes = {
            let node = &mut self.nodes[ni];
            node.engine
                .free_pages(&mut node.kernel, pages as usize, now)
                .map_err(mem_err("free_pages", ni, now))?
        };
        let mut write_pages = 0;
        if !writes.is_empty() {
            let req = DiskRequest::write(writes);
            write_pages = req.pages();
            let c = self.submit_io(ni, now, &req);
            self.nodes[ni].trace.record_out(c, write_pages);
        }
        self.obs.emit(now, || ObsEvent::MemPressure {
            node: ni as u32,
            target: pages,
            write_pages,
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    fn into_result(self) -> RunResult {
        let jobs: Vec<JobResult> = self
            .cfg
            .jobs
            .iter()
            .enumerate()
            .map(|(j, spec)| {
                let iterations = self.job_procs[j]
                    .iter()
                    .map(|&p| self.procs[p].iterations_done)
                    .min()
                    .unwrap_or(0);
                JobResult {
                    name: spec.name.clone(),
                    workload: spec.workload,
                    // into_result runs only after run() drains the queue,
                    // at which point every job has a completion time.
                    // agp-lint: allow(panic-site): run loop completed all jobs
                    completion: self.completions[j].expect("all jobs completed"),
                    iterations,
                }
            })
            .collect();
        let makespan = jobs
            .iter()
            .map(|j| j.completion)
            .fold(SimTime::ZERO, SimTime::max)
            .since(SimTime::ZERO);
        let nodes = self
            .nodes
            .into_iter()
            .map(|n| NodeReport {
                disk: n.disk.stats().clone(),
                engine: n.engine.stats(),
                bg_cleaned_pages: n.engine.bg_cleaned_pages(),
                trace: n.trace,
            })
            .collect();
        RunResult {
            schema_version: crate::result::RESULT_SCHEMA_VERSION,
            policy: self.cfg.policy,
            mode: self.cfg.mode,
            seed: self.cfg.seed,
            jobs,
            makespan,
            nodes,
            switches: self.switches,
            events: self.events,
            invariant_checks: self.invariant_checks,
        }
    }
}

/// Provenance-carrying adapter for `map_err` on memory-subsystem calls.
fn mem_err(what: &'static str, ni: usize, at: SimTime) -> impl FnOnce(MemError) -> SimError {
    move |e| SimError::Mem {
        what,
        node: ni as u32,
        at_us: at.since(SimTime::ZERO).as_us(),
        source: e,
    }
}

/// VM geometry from the config (also used to rebuild a crashed node's
/// kernel with the exact construction-time parameters).
fn vm_params(cfg: &ClusterConfig) -> VmParams {
    let total_frames = agp_sim::units::pages_from_mib(cfg.mem_mib);
    let wired_frames = agp_sim::units::pages_from_mib(cfg.wired_mib);
    let mut params = VmParams::for_frames(total_frames, wired_frames);
    if let Some(ra) = cfg.readahead {
        params.readahead = ra;
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JobSpec;
    use agp_core::PolicyConfig;
    use agp_sim::SimDur;
    use agp_workload::{Benchmark, Class, WorkloadSpec};

    /// A scaled-down cluster so tests run fast while keeping the paper's
    /// pressure geometry: each LU.A job's ~42 MiB working set fits the
    /// 64 MiB of usable memory alone, but the two jobs together do not —
    /// so paging happens at job switches, not within a quantum.
    fn tiny_config(policy: PolicyConfig, mode: ScheduleMode) -> ClusterConfig {
        let mut cfg = ClusterConfig::paper_defaults(1);
        cfg.mem_mib = 128;
        cfg.wired_mib = 64;
        cfg.quantum = SimDur::from_secs(10);
        cfg.policy = policy;
        cfg.mode = mode;
        cfg.trace_bucket = SimDur::from_secs(1);
        cfg.jobs = vec![
            JobSpec::new("LU.A #1", WorkloadSpec::serial(Benchmark::LU, Class::A)),
            JobSpec::new("LU.A #2", WorkloadSpec::serial(Benchmark::LU, Class::A)),
        ];
        // Tests always run the conservation sweep; production runs opt in.
        cfg.check_invariants = true;
        cfg
    }

    #[test]
    fn batch_run_completes_both_jobs() {
        let r = ClusterSim::new(tiny_config(PolicyConfig::original(), ScheduleMode::Batch))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.jobs.len(), 2);
        assert_eq!(r.switches, 0, "batch mode never switches");
        let spec = WorkloadSpec::serial(Benchmark::LU, Class::A);
        for j in &r.jobs {
            assert_eq!(j.iterations, spec.iterations());
        }
        assert!(
            r.jobs[1].completion > r.jobs[0].completion,
            "batch runs serially"
        );
    }

    #[test]
    fn gang_run_switches_and_completes() {
        let r = ClusterSim::new(tiny_config(PolicyConfig::original(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            r.switches >= 2,
            "expected several quantum switches, got {}",
            r.switches
        );
        assert!(r.total_pages_in() > 0, "memory pressure must cause paging");
        assert!(r.total_pages_out() > 0);
    }

    #[test]
    fn monitored_run_is_observation_transparent_and_snapshots_are_deterministic() {
        let plain = ClusterSim::new(tiny_config(PolicyConfig::full(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        let monitored = || {
            let (tx, rx) = std::sync::mpsc::channel();
            let mut sim =
                ClusterSim::new(tiny_config(PolicyConfig::full(), ScheduleMode::Gang)).unwrap();
            sim.attach_monitor(tx, SimDur::from_secs(30));
            let r = sim.run().unwrap();
            let snaps: Vec<crate::MetricsSnapshot> = rx.try_iter().collect();
            (r, snaps)
        };
        let (r, snaps) = monitored();
        // Transparency: the monitored result is the plain result.
        assert_eq!(format!("{plain:?}"), format!("{r:?}"));
        // Snapshot stream shape: sequenced from 0, monotone sim time,
        // exactly one final `done` snapshot matching the result.
        assert!(snaps.len() >= 2, "periodic + final: {}", snaps.len());
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.seq, i as u64);
            assert_eq!(s.jobs_total, 2);
            assert_eq!(s.done, i == snaps.len() - 1);
            assert!(s.label.contains("2j/1n"), "label: {}", s.label);
        }
        assert!(snaps.windows(2).all(|w| w[0].sim_us <= w[1].sim_us));
        let last = snaps.last().unwrap();
        assert_eq!(last.jobs_done, 2);
        assert_eq!(last.events, r.events);
        assert_eq!(last.switches, r.switches);
        assert_eq!(last.pages_in, r.total_pages_in());
        assert_eq!(last.pages_out, r.total_pages_out());
        // Determinism: same seed, byte-identical snapshot JSONL.
        let jsonl = |s: &[crate::MetricsSnapshot]| {
            s.iter()
                .map(|x| x.to_json_line())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let (_, snaps2) = monitored();
        assert_eq!(jsonl(&snaps), jsonl(&snaps2));
    }

    #[test]
    fn gang_is_slower_than_batch_under_pressure() {
        let batch = ClusterSim::new(tiny_config(PolicyConfig::original(), ScheduleMode::Batch))
            .unwrap()
            .run()
            .unwrap();
        let gang = ClusterSim::new(tiny_config(PolicyConfig::original(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            gang.makespan > batch.makespan,
            "switch paging must cost time: gang {} vs batch {}",
            gang.makespan,
            batch.makespan
        );
    }

    #[test]
    fn adaptive_beats_original_on_makespan() {
        let orig = ClusterSim::new(tiny_config(PolicyConfig::original(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        let full = ClusterSim::new(tiny_config(PolicyConfig::full(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            full.makespan < orig.makespan,
            "so/ao/ai/bg {} must beat orig {}",
            full.makespan,
            orig.makespan
        );
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = ClusterSim::new(tiny_config(PolicyConfig::full(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        let b = ClusterSim::new(tiny_config(PolicyConfig::full(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
        assert_eq!(a.total_pages_in(), b.total_pages_in());
        assert_eq!(
            a.jobs.iter().map(|j| j.completion).collect::<Vec<_>>(),
            b.jobs.iter().map(|j| j.completion).collect::<Vec<_>>()
        );
    }

    #[test]
    fn invariant_sweep_runs_and_does_not_perturb() {
        let checked = tiny_config(PolicyConfig::full(), ScheduleMode::Gang);
        let mut plain = tiny_config(PolicyConfig::full(), ScheduleMode::Gang);
        plain.check_invariants = false;
        let a = ClusterSim::new(checked).unwrap().run().unwrap();
        let b = ClusterSim::new(plain).unwrap().run().unwrap();
        assert!(
            a.invariant_checks > a.switches,
            "per-switch + periodic + final sweeps: got {} over {} switches",
            a.invariant_checks,
            a.switches
        );
        assert_eq!(b.invariant_checks, 0, "sweeps are opt-in");
        // The sweep only reads state: both runs must be identical.
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.events, b.events);
        assert_eq!(a.total_pages_in(), b.total_pages_in());
    }

    #[test]
    fn different_seeds_still_complete() {
        let mut cfg = tiny_config(PolicyConfig::full(), ScheduleMode::Gang);
        cfg.seed = 12345;
        let r = ClusterSim::new(cfg).unwrap().run().unwrap();
        assert_eq!(r.jobs.len(), 2);
    }

    #[test]
    fn parallel_job_runs_on_multiple_nodes() {
        let mut cfg = parallel_cfg();
        cfg.policy = PolicyConfig::original();
        let r = ClusterSim::new(cfg).unwrap().run().unwrap();
        assert_eq!(r.nodes.len(), 2);
        // Both nodes page (each holds one rank of each job).
        assert!(r.nodes[0].disk.pages_read > 0);
        assert!(r.nodes[1].disk.pages_read > 0);
    }

    fn parallel_cfg() -> ClusterConfig {
        let mut cfg = ClusterConfig::paper_defaults(2);
        cfg.mem_mib = 64;
        cfg.wired_mib = 24;
        cfg.quantum = SimDur::from_secs(5);
        cfg.trace_bucket = SimDur::from_secs(1);
        cfg.jobs = vec![
            JobSpec::new(
                "CG.A x2 #1",
                WorkloadSpec::parallel(Benchmark::CG, Class::A, 2),
            ),
            JobSpec::new(
                "CG.A x2 #2",
                WorkloadSpec::parallel(Benchmark::CG, Class::A, 2),
            ),
        ];
        cfg.check_invariants = true;
        cfg
    }

    /// Run `cfg` with a JSONL trace attached and return the result plus
    /// the rendered trace.
    fn run_traced(cfg: ClusterConfig) -> (RunResult, String) {
        let sink = agp_obs::shared(agp_obs::JsonlWriter::new(Vec::new()));
        let link = agp_obs::ObsLink::to(sink.clone());
        let mut sim = ClusterSim::new(cfg).unwrap();
        sim.attach_observer(&link);
        let r = sim.run().unwrap();
        drop(link);
        let writer = std::sync::Arc::try_unwrap(sink)
            .expect("sim dropped, sink has one owner")
            .into_inner()
            .unwrap();
        let bytes = writer.finish().unwrap();
        (r, String::from_utf8(bytes).unwrap())
    }

    #[test]
    fn same_seed_traces_are_byte_identical() {
        let cfg = || tiny_config(PolicyConfig::full(), ScheduleMode::Gang);
        let (ra, ta) = run_traced(cfg());
        let (rb, tb) = run_traced(cfg());
        assert_eq!(ra.makespan, rb.makespan);
        assert!(!ta.is_empty(), "a pressured gang run must emit events");
        assert_eq!(agp_obs::trace_diff(&ta, &tb), None);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seed_traces_diverge() {
        // CG has a random-region component, so its reference stream (and
        // hence the event trace) is seed-sensitive; LU is not.
        let mut a = parallel_cfg();
        a.seed = 1;
        let mut b = parallel_cfg();
        b.seed = 2;
        let (_, ta) = run_traced(a);
        let (_, tb) = run_traced(b);
        let div = agp_obs::trace_diff(&ta, &tb).expect("different seeds must diverge");
        assert!(div.line >= 1);
        assert!(div.left.is_some() || div.right.is_some());
    }

    #[test]
    fn observer_does_not_perturb_the_simulation() {
        let plain = ClusterSim::new(tiny_config(PolicyConfig::full(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        let (observed, _) = run_traced(tiny_config(PolicyConfig::full(), ScheduleMode::Gang));
        assert_eq!(plain.makespan, observed.makespan);
        assert_eq!(plain.events, observed.events);
        assert_eq!(plain.total_pages_in(), observed.total_pages_in());
    }

    #[test]
    fn switch_phase_durations_sum_to_switch_total() {
        let sink = agp_obs::shared(agp_obs::Collector::new());
        let link = agp_obs::ObsLink::to(sink.clone());
        let mut sim =
            ClusterSim::new(tiny_config(PolicyConfig::full(), ScheduleMode::Gang)).unwrap();
        sim.attach_observer(&link);
        let r = sim.run().unwrap();
        let c = sink.lock().unwrap();
        let recs = c.switch_records();
        assert_eq!(c.counters.switches as usize, recs.len());
        assert!(
            c.counters.switches > r.switches,
            "every rotation plus the initial placement is recorded"
        );
        assert!(
            recs.iter().any(|rec| rec.total_us > 0),
            "paging pressure must make some switch cost time"
        );
        for rec in recs {
            assert_eq!(
                rec.phase_sum_us(),
                rec.total_us,
                "switch {} phases must sum to its total",
                rec.switch
            );
        }
        assert!(
            c.counters.faults_major + c.counters.faults_minor > 0,
            "first touches must raise faults"
        );
        assert!(c.counters.disk_reads + c.counters.disk_writes > 0);
    }

    #[test]
    fn selective_policy_reduces_false_evictions() {
        let orig = ClusterSim::new(tiny_config(PolicyConfig::original(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        let so = ClusterSim::new(tiny_config(PolicyConfig::so(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        let fe_orig = orig.total_engine_stats().false_evictions;
        let fe_so = so.total_engine_stats().false_evictions;
        assert!(
            fe_so < fe_orig || fe_orig == 0,
            "selective ({fe_so}) must not falsely evict more than original ({fe_orig})"
        );
    }

    #[test]
    fn bgwrite_cleans_pages() {
        let r = ClusterSim::new(tiny_config(PolicyConfig::so_ao_bg(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        let cleaned: u64 = r.nodes.iter().map(|n| n.bg_cleaned_pages).sum();
        assert!(cleaned > 0, "background writer must run in the bg window");
    }

    #[test]
    fn adaptive_page_in_replays_pages() {
        let r = ClusterSim::new(tiny_config(PolicyConfig::full(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        let stats = r.total_engine_stats();
        assert!(stats.recorded_pages > 0, "switch evictions are recorded");
        assert!(
            stats.replayed_pages > 0,
            "records are replayed as bulk reads"
        );
    }

    #[test]
    fn gauge_sampling_is_opt_in_and_does_not_perturb_outcomes() {
        let plain = ClusterSim::new(tiny_config(PolicyConfig::full(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        let mut cfg = tiny_config(PolicyConfig::full(), ScheduleMode::Gang);
        cfg.sample_every = Some(SimDur::from_secs(5));
        let sink = agp_obs::shared(agp_obs::Collector::new());
        let link = agp_obs::ObsLink::to(sink.clone());
        let mut sim = ClusterSim::new(cfg).unwrap();
        sim.attach_observer(&link);
        let sampled = sim.run().unwrap();
        let c = sink.lock().unwrap();
        assert!(c.counters.gauge_samples > 0, "cadence must deliver gauges");
        // Sampling adds observation events but must not change the physics.
        assert_eq!(plain.makespan, sampled.makespan);
        assert_eq!(plain.total_pages_in(), sampled.total_pages_in());
        assert_eq!(plain.switches, sampled.switches);
        assert!(
            sampled.events > plain.events,
            "sample ticks pass through the event loop"
        );
    }

    #[test]
    fn sampling_without_observer_schedules_nothing() {
        let mut cfg = tiny_config(PolicyConfig::full(), ScheduleMode::Gang);
        cfg.sample_every = Some(SimDur::from_secs(5));
        let r = ClusterSim::new(cfg).unwrap().run().unwrap();
        let plain = ClusterSim::new(tiny_config(PolicyConfig::full(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r.events, plain.events, "no observer, no sample events");
    }

    #[test]
    fn gauge_sampled_traces_are_byte_identical_and_tagged() {
        let cfg = || {
            let mut c = tiny_config(PolicyConfig::full(), ScheduleMode::Gang);
            c.sample_every = Some(SimDur::from_secs(5));
            c
        };
        let (_, ta) = run_traced(cfg());
        let (_, tb) = run_traced(cfg());
        assert_eq!(agp_obs::trace_diff(&ta, &tb), None);
        assert!(ta.contains("\"ev\":\"node_gauge\""));
        assert!(ta.contains("\"ev\":\"proc_gauge\""));
    }

    // ------------------------------------------------------------------
    // Chaos: fault injection & recovery
    // ------------------------------------------------------------------

    use agp_faults::{FaultPlan, FaultSpec};

    /// Collector-backed run helper for counter assertions.
    fn run_collected(cfg: ClusterConfig) -> (RunResult, agp_obs::ObsCounters) {
        let sink = agp_obs::shared(agp_obs::Collector::new());
        let link = agp_obs::ObsLink::to(sink.clone());
        let mut sim = ClusterSim::new(cfg).unwrap();
        sim.attach_observer(&link);
        let r = sim.run().unwrap();
        let counters = sink.lock().unwrap().counters;
        (r, counters)
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_no_plan() {
        // The zero-behavioural-diff guarantee: attaching an injector with
        // no fault specs must not move a single event.
        let plain = parallel_cfg();
        let mut chaos = parallel_cfg();
        chaos.faults = Some(FaultPlan::empty(99));
        let (ra, ta) = run_traced(plain);
        let (rb, tb) = run_traced(chaos);
        assert_eq!(ra.makespan, rb.makespan);
        assert_eq!(ra.events, rb.events);
        assert_eq!(agp_obs::trace_diff(&ta, &tb), None);
        assert_eq!(ta, tb);
    }

    #[test]
    fn chaos_same_seed_traces_are_byte_identical() {
        let cfg = || {
            let mut c = parallel_cfg();
            c.faults = Some(FaultPlan::smoke(42));
            c
        };
        let (ra, ta) = run_traced(cfg());
        let (rb, tb) = run_traced(cfg());
        assert_eq!(ra.makespan, rb.makespan);
        assert_eq!(agp_obs::trace_diff(&ta, &tb), None);
        assert_eq!(ta, tb);
        assert!(
            ta.contains("\"ev\":\"disk_error\"") || ta.contains("\"ev\":\"disk_slowdown\""),
            "the smoke plan must actually inject disk faults"
        );
    }

    #[test]
    fn node_crash_requeues_jobs_and_completes() {
        let base = ClusterSim::new(parallel_cfg()).unwrap().run().unwrap();
        let mid = base.makespan.as_us() / 3;
        let mut plan = FaultPlan::empty(7);
        plan.faults.push(FaultSpec::NodeCrash {
            node: 1,
            at_us: mid,
            down_us: mid / 2,
        });
        plan.faults.push(FaultSpec::MemPressure {
            node: 0,
            at_us: mid / 2,
            pages: 256,
        });
        let mut cfg = parallel_cfg();
        cfg.faults = Some(plan);
        // Both jobs have a rank on node 1: the crash suspends both and
        // the restart requeues both. The run must complete — with the
        // restarted-from-scratch work on top of the baseline.
        let (r, c) = run_collected(cfg);
        assert_eq!(r.jobs.len(), 2);
        assert_eq!(c.fault_node_crashes, 1);
        assert_eq!(c.fault_node_restarts, 1);
        assert_eq!(c.fault_jobs_requeued, 2);
        assert!(c.fault_mem_pressure_pages > 0);
        assert!(
            r.makespan > base.makespan,
            "requeued jobs restart from iteration 0: {} vs {}",
            r.makespan,
            base.makespan
        );
    }

    #[test]
    fn injected_disk_errors_retry_and_stats_cohere() {
        let mut plan = FaultPlan::empty(5);
        // The window must span the first gang switch (quantum = 10s) —
        // both jobs fit cold-start in memory, so earlier instants see no
        // disk traffic at all.
        plan.faults.push(FaultSpec::DiskErrors {
            node: 0,
            p: 1.0,
            from_us: 0,
            until_us: 30_000_000,
        });
        let mut cfg = tiny_config(PolicyConfig::original(), ScheduleMode::Gang);
        cfg.faults = Some(plan);
        let (r, c) = run_collected(cfg);
        let disk = &r.nodes[0].disk;
        assert!(disk.errors > 0, "the window must catch live requests");
        assert_eq!(
            c.fault_disk_errors, disk.errors,
            "collector and DiskStats must agree on the error count"
        );
        assert_eq!(
            c.fault_io_retries, c.fault_disk_errors,
            "every failed attempt is followed by exactly one retry"
        );
        // Errored attempts move no pages: the activity trace (successful
        // completions only) still reconciles with the disk page counters.
        let tr = r.merged_trace();
        assert_eq!(tr.total_in(), r.total_pages_in());
        assert_eq!(tr.total_out(), r.total_pages_out());
    }

    #[test]
    fn repeated_disk_errors_degrade_adaptive_page_in() {
        let mut plan = FaultPlan::empty(11);
        plan.faults.push(FaultSpec::DiskErrors {
            node: 0,
            p: 1.0,
            from_us: 0,
            until_us: 30_000_000,
        });
        let mut cfg = tiny_config(PolicyConfig::full(), ScheduleMode::Gang);
        cfg.faults = Some(plan);
        let (r, c) = run_collected(cfg);
        assert_eq!(
            c.fault_ai_degrades, 1,
            "ai falls back to demand paging exactly once per node"
        );
        assert!(
            c.fault_disk_errors
                >= u64::from(agp_faults::RecoveryPolicy::default().ai_degrade_after)
        );
        assert_eq!(r.jobs.len(), 2, "degraded run still completes");
    }

    #[test]
    fn dropped_barrier_releases_time_out_and_reissue() {
        let mut plan = FaultPlan::empty(3);
        plan.faults.push(FaultSpec::BarrierDrops {
            job: 0,
            p: 1.0,
            from_us: 0,
            until_us: u64::MAX,
        });
        plan.recovery.barrier_timeout_us = 100_000;
        plan.recovery.barrier_retries = 1;
        let base = ClusterSim::new(parallel_cfg()).unwrap().run().unwrap();
        let mut cfg = parallel_cfg();
        cfg.faults = Some(plan);
        let (r, c) = run_collected(cfg);
        assert!(
            c.fault_barrier_timeouts > 0,
            "every release of job 0 is dropped and must time out"
        );
        assert!(
            r.makespan > base.makespan,
            "barrier stalls must cost wall time: {} vs {}",
            r.makespan,
            base.makespan
        );
    }

    #[test]
    fn typed_errors_carry_the_failure_class() {
        // A plan referencing a node outside the cluster is a config error.
        let mut cfg = tiny_config(PolicyConfig::original(), ScheduleMode::Gang);
        let mut plan = FaultPlan::empty(1);
        plan.faults.push(FaultSpec::MemPressure {
            node: 64,
            at_us: 1,
            pages: 1,
        });
        cfg.faults = Some(plan);
        match ClusterSim::new(cfg).map(|_| ()) {
            Err(SimError::InvalidConfig(msg)) => assert!(msg.contains("fault plan"), "{msg}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Node crashes need a scheduler that can compact; batch has none.
        let mut cfg = tiny_config(PolicyConfig::original(), ScheduleMode::Batch);
        let mut plan = FaultPlan::empty(1);
        plan.faults.push(FaultSpec::NodeCrash {
            node: 0,
            at_us: 1,
            down_us: 1,
        });
        cfg.faults = Some(plan);
        match ClusterSim::new(cfg).map(|_| ()) {
            Err(SimError::FaultPlan(msg)) => assert!(msg.contains("gang"), "{msg}"),
            other => panic!("expected FaultPlan error, got {other:?}"),
        }
        // The legacy string bridge renders the same text as Display.
        let e = SimError::FaultPlan("x".into());
        let s: String = e.clone().into();
        assert_eq!(s, e.to_string());
    }

    #[test]
    fn traces_capture_paging_activity() {
        let r = ClusterSim::new(tiny_config(PolicyConfig::original(), ScheduleMode::Gang))
            .unwrap()
            .run()
            .unwrap();
        let tr = r.merged_trace();
        assert!(tr.total_in() > 0);
        assert_eq!(tr.total_in(), r.total_pages_in());
        assert_eq!(tr.total_out(), r.total_pages_out());
    }
}
