//! Typed simulation errors with node/time provenance.
//!
//! The cluster layer historically reported failures as bare `String`s.
//! With fault injection in the tree, callers need to *distinguish*
//! outcomes — a configuration mistake, a memory-model error on a
//! specific node, a blown invariant, a tick-budget overrun — so the
//! public APIs now return [`SimError`]. Every variant renders the same
//! human-readable text as before via `Display`, and
//! `From<SimError> for String` keeps legacy `Result<_, String>` call
//! sites compiling through `?`.

use agp_mem::MemError;
use agp_sim::SimDur;
use std::fmt;

/// Why a simulation could not be built or run to completion.
///
/// Carries provenance where it exists: the node index and simulated
/// instant (µs) at which the failing operation executed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed validation before the run started.
    InvalidConfig(String),
    /// The attached fault plan failed validation.
    FaultPlan(String),
    /// The gang scheduler rejected a job placement.
    Schedule {
        /// Job name from the config.
        job: String,
        /// The scheduler's complaint.
        detail: String,
    },
    /// The memory subsystem failed on a node.
    Mem {
        /// Operation that failed (`on_fault`, `touch_run`, ...).
        what: &'static str,
        /// Node the operation ran on.
        node: u32,
        /// Simulated instant, µs.
        at_us: u64,
        /// The underlying memory error.
        source: MemError,
    },
    /// A conservation/coherence invariant sweep found corrupt state.
    InvariantViolation {
        /// Which sweep tripped (`periodic sweep`, `post-switch`, ...).
        context: String,
        /// Node whose state was incoherent, when localized.
        node: Option<u32>,
        /// Simulated instant, µs.
        at_us: u64,
        /// The violated invariant.
        detail: String,
    },
    /// Simulated time blew past the configured wall
    /// (`ClusterConfig::max_sim_time`) — thrashing livelock, or a fault
    /// plan whose recovery cannot keep up.
    SimTimeExceeded {
        /// The configured limit.
        limit: SimDur,
        /// Simulated instant that breached it, µs.
        at_us: u64,
    },
    /// The event queue drained with jobs unfinished (model deadlock).
    Deadlock {
        /// Simulated instant of the last event, µs.
        at_us: u64,
        /// Jobs still incomplete.
        unfinished: u32,
    },
    /// A deterministic watchdog rule tripped with the flight recorder
    /// armed; the ring is frozen and an incident dump is available.
    WatchdogTrip {
        /// The rule that tripped.
        rule: agp_obs::WatchdogRule,
        /// Observed value that crossed the limit.
        value: u64,
        /// The configured limit.
        limit: u64,
        /// Simulated instant of the trip, µs.
        at_us: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "{msg}"),
            SimError::FaultPlan(msg) => write!(f, "fault plan: {msg}"),
            SimError::Schedule { job, detail } => write!(f, "scheduling {job}: {detail}"),
            SimError::Mem {
                what,
                node,
                at_us,
                source,
            } => write!(
                f,
                "memory subsystem error in {what} (node {node}, t={at_us}us): {source}"
            ),
            SimError::InvariantViolation {
                context,
                node,
                at_us,
                detail,
            } => match node {
                Some(n) => write!(
                    f,
                    "invariant violation at {at_us}us ({context}, node {n}): {detail}"
                ),
                None => write!(f, "invariant violation at {at_us}us ({context}): {detail}"),
            },
            SimError::SimTimeExceeded { limit, at_us } => write!(
                f,
                "simulation exceeded max_sim_time ({limit}) at {at_us}us — thrashing livelock?"
            ),
            SimError::Deadlock { at_us, unfinished } => write!(
                f,
                "event queue drained at {at_us}us with {unfinished} job(s) unfinished \
                 (model deadlock)"
            ),
            SimError::WatchdogTrip {
                rule,
                value,
                limit,
                at_us,
            } => write!(
                f,
                "watchdog tripped at {at_us}us: {} ({value} > {limit}) — incident dump frozen",
                rule.name()
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Mem { source, .. } => Some(source),
            _ => None,
        }
    }
}

// Legacy bridge: `?` in a `Result<_, String>` context keeps working.
impl From<SimError> for String {
    fn from(e: SimError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agp_mem::ProcId;

    #[test]
    fn display_carries_provenance() {
        let e = SimError::Mem {
            what: "on_fault",
            node: 3,
            at_us: 1_500,
            source: MemError::NoSuchProc(ProcId(9)),
        };
        let s = e.to_string();
        assert!(s.contains("on_fault"));
        assert!(s.contains("node 3"));
        assert!(s.contains("t=1500us"));
        assert!(s.contains("pid9"));
    }

    #[test]
    fn string_conversion_matches_display() {
        let e = SimError::Deadlock {
            at_us: 42,
            unfinished: 2,
        };
        let s: String = e.clone().into();
        assert_eq!(s, e.to_string());
        assert!(s.contains("2 job(s) unfinished"));
    }

    #[test]
    fn watchdog_trip_display_names_the_rule() {
        let e = SimError::WatchdogTrip {
            rule: agp_obs::WatchdogRule::JobStall,
            value: 9_000_000,
            limit: 5_000_000,
            at_us: 12_000,
        };
        let s = e.to_string();
        assert!(s.contains("job_stall"));
        assert!(s.contains("at 12000us"));
        assert!(s.contains("9000000 > 5000000"));
    }

    #[test]
    fn mem_source_is_exposed() {
        use std::error::Error;
        let e = SimError::Mem {
            what: "touch_run",
            node: 0,
            at_us: 0,
            source: MemError::OutOfFrames,
        };
        assert!(e.source().is_some());
        assert!(SimError::InvalidConfig("x".into()).source().is_none());
    }
}
