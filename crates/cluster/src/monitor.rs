//! Live run monitoring: periodic [`MetricsSnapshot`]s out of the sim loop.
//!
//! The snapshot channel is the seam between the deterministic simulation
//! and wall-clock consumers (`agp top`, `agp run --progress`, the future
//! `agp serve` daemon). Everything *in* a snapshot is sim-state only —
//! sim time, event/fault/page counts — so emitting snapshots never
//! perturbs the simulation and the `--snapshot-out` JSONL stream is
//! byte-identical across same-seed runs. Speed ratios, rates and ETAs
//! are computed receiver-side, where wall clocks are sanctioned.
//!
//! Two attachment paths:
//! * [`crate::sim::ClusterSim::attach_monitor`] — direct, for a single
//!   run the caller owns (`agp top`);
//! * [`MonitorHub::install`] — a process-global hook picked up by every
//!   subsequently constructed sim, for fleet-style progress over the
//!   experiment registry (`agp run --progress`), where the runs are
//!   constructed deep inside the experiment runners.

use agp_sim::SimDur;
use std::sync::mpsc::Sender;
use std::sync::{Mutex, OnceLock};

/// One point-in-time view of a running simulation. All fields are
/// simulation state; nothing here reads a wall clock.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Identifies the run: jobs × nodes, policy label, schedule mode.
    pub label: String,
    /// Snapshot sequence number within the run, from 0.
    pub seq: u64,
    /// Simulation time of the snapshot, µs.
    pub sim_us: u64,
    /// Events processed so far.
    pub events: u64,
    /// Gang switches performed so far.
    pub switches: u64,
    /// Major faults raised so far (summed over nodes).
    pub faults_major: u64,
    /// Pages paged in so far (summed over node disks).
    pub pages_in: u64,
    /// Pages paged out so far (summed over node disks).
    pub pages_out: u64,
    /// Jobs that have completed.
    pub jobs_done: u64,
    /// Jobs in the configuration.
    pub jobs_total: u64,
    /// Whether this is the run's final snapshot.
    pub done: bool,
}

impl MetricsSnapshot {
    /// Render as one deterministic JSON line (fixed field order, integers
    /// only, minimal string escaping) — the `--snapshot-out` format and
    /// the wire shape the `agp serve` daemon will re-serve.
    pub fn to_json_line(&self) -> String {
        let mut label = String::with_capacity(self.label.len());
        for c in self.label.chars() {
            match c {
                '"' => label.push_str("\\\""),
                '\\' => label.push_str("\\\\"),
                c if (c as u32) < 0x20 => label.push_str(&format!("\\u{:04x}", c as u32)),
                c => label.push(c),
            }
        }
        format!(
            "{{\"label\":\"{}\",\"seq\":{},\"sim_us\":{},\"events\":{},\"switches\":{},\
             \"faults_major\":{},\"pages_in\":{},\"pages_out\":{},\"jobs_done\":{},\
             \"jobs_total\":{},\"done\":{}}}",
            label,
            self.seq,
            self.sim_us,
            self.events,
            self.switches,
            self.faults_major,
            self.pages_in,
            self.pages_out,
            self.jobs_done,
            self.jobs_total,
            self.done
        )
    }
}

/// A monitor attachment: where to send snapshots and how often (in sim
/// time) to take them.
#[derive(Clone)]
pub(crate) struct MonitorTap {
    pub(crate) tx: Sender<MetricsSnapshot>,
    pub(crate) every: SimDur,
}

/// The process-global monitor hook.
///
/// [`MonitorHub::install`] arms it; every [`crate::ClusterSim`]
/// constructed while armed clones the tap and emits periodic snapshots.
/// [`MonitorHub::uninstall`] disarms it (sims already constructed keep
/// their tap). The hub holds a channel sender, not sim state: a run whose
/// receiver has hung up just drops its snapshots on the floor.
pub struct MonitorHub;

static HUB: OnceLock<Mutex<Option<MonitorTap>>> = OnceLock::new();

fn hub() -> &'static Mutex<Option<MonitorTap>> {
    HUB.get_or_init(|| Mutex::new(None))
}

impl MonitorHub {
    /// Arm the hub: every sim constructed from now on sends a
    /// [`MetricsSnapshot`] to `tx` every `every` of sim time (plus one
    /// final `done` snapshot). Replaces any previous installation.
    pub fn install(tx: Sender<MetricsSnapshot>, every: SimDur) {
        let tap = MonitorTap {
            tx,
            every: SimDur::from_us(every.as_us().max(1)),
        };
        match hub().lock() {
            Ok(mut g) => *g = Some(tap),
            Err(mut poisoned) => **poisoned.get_mut() = Some(tap),
        }
    }

    /// Disarm the hub. Sims constructed while it was armed keep emitting.
    pub fn uninstall() {
        match hub().lock() {
            Ok(mut g) => *g = None,
            Err(mut poisoned) => **poisoned.get_mut() = None,
        }
    }

    /// The currently installed tap, if any (cloned).
    pub(crate) fn current() -> Option<MonitorTap> {
        match hub().lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> MetricsSnapshot {
        MetricsSnapshot {
            label: "2j4n so+ai gang".to_string(),
            seq: 3,
            sim_us: 120_000_000,
            events: 4096,
            switches: 2,
            faults_major: 17,
            pages_in: 512,
            pages_out: 640,
            jobs_done: 1,
            jobs_total: 2,
            done: false,
        }
    }

    #[test]
    fn json_line_is_stable_and_ordered() {
        let line = snap().to_json_line();
        assert_eq!(
            line,
            "{\"label\":\"2j4n so+ai gang\",\"seq\":3,\"sim_us\":120000000,\
             \"events\":4096,\"switches\":2,\"faults_major\":17,\"pages_in\":512,\
             \"pages_out\":640,\"jobs_done\":1,\"jobs_total\":2,\"done\":false}"
        );
        assert_eq!(line, snap().to_json_line(), "rendering is deterministic");
    }

    #[test]
    fn json_label_is_escaped() {
        let mut s = snap();
        s.label = "a\"b\\c\nd".to_string();
        let line = s.to_json_line();
        assert!(line.contains("a\\\"b\\\\c\\u000ad"), "{line}");
    }

    #[test]
    fn hub_install_and_uninstall_round_trip() {
        let (tx, rx) = std::sync::mpsc::channel();
        MonitorHub::install(tx, SimDur::from_secs(1));
        let tap = MonitorHub::current().expect("armed");
        assert_eq!(tap.every, SimDur::from_secs(1));
        tap.tx.send(snap()).unwrap();
        // Other tests' sims may legitimately pick up the armed hub and
        // send their own snapshots; find ours by label.
        let mine = std::iter::from_fn(|| rx.recv().ok())
            .find(|s| s.label == "2j4n so+ai gang")
            .expect("sent snapshot arrives");
        assert_eq!(mine.seq, 3);
        MonitorHub::uninstall();
        assert!(MonitorHub::current().is_none());
    }

    #[test]
    fn zero_interval_is_clamped() {
        let (tx, _rx) = std::sync::mpsc::channel();
        MonitorHub::install(tx, SimDur::ZERO);
        assert_eq!(MonitorHub::current().unwrap().every, SimDur::from_us(1));
        MonitorHub::uninstall();
    }
}
