//! Deterministic watchdog rules evaluated by the simulation loop.
//!
//! When the flight recorder (`agp_obs::flight`) is armed, the sim loop
//! evaluates a small rule set **in sim time** — never against the host
//! clock — so a trip is reproducible: the same seed and config trip the
//! same rule at the same simulated instant, and the frozen incident dump
//! is byte-identical across runs.
//!
//! The taxonomy ([`agp_obs::WatchdogRule`]):
//!
//! * **invariant** — the periodic invariant sweep found corrupt state
//!   (the existing [`crate::SimError::InvariantViolation`] path, recorded
//!   as a rule trip so post-mortems triage it like any other);
//! * **recovery_exhausted** — a recovery policy burned its whole retry
//!   budget and forced an outcome ([`agp_faults::RecoveryPolicy`]'s
//!   `io_retries` or `barrier_retries`);
//! * **job_stall** — an unfinished job made no observable progress
//!   (dispatch, I/O completion, barrier release) past the configured SLO;
//! * **no_progress** — *every* unfinished job stalled at once: sim time
//!   keeps advancing (timers, background ticks) but no job-level progress
//!   happens for the whole bound — the run is hung, not slow. This is the
//!   fuzzer's `Hang` oracle;
//! * **queue_depth** — the event queue grew past the configured bound
//!   (runaway self-scheduling).
//!
//! Trips are uniform `value > limit` readings: stall-µs vs SLO-µs,
//! queue length vs bound, attempts vs budget, and violations (1) vs
//! allowed (0) for the invariant rule.

use crate::error::SimError;
use agp_obs::flight::{self, IncidentTrigger};
use agp_obs::WatchdogRule;
use agp_sim::{SimDur, SimTime};

/// One tripped rule reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Trip {
    /// The rule that tripped.
    pub rule: WatchdogRule,
    /// Observed value.
    pub value: u64,
    /// The limit it crossed.
    pub limit: u64,
}

/// The armed rule set, snapshotted from the flight recorder's
/// [`flight::FlightConfig`] when a run starts. Disarmed (the default)
/// evaluates nothing.
#[derive(Clone, Debug, Default)]
pub(crate) struct Watchdog {
    armed: bool,
    stall_slo: Option<SimDur>,
    queue_limit: Option<u64>,
    no_progress: Option<SimDur>,
    trip_on_exhaustion: bool,
}

impl Watchdog {
    /// Snapshot the currently armed flight configuration (disarmed when
    /// no recorder is armed).
    pub fn from_flight() -> Watchdog {
        match flight::config() {
            Some(cfg) => Watchdog {
                armed: true,
                stall_slo: cfg.stall_slo_us.map(SimDur::from_us),
                queue_limit: cfg.queue_limit,
                no_progress: cfg.no_progress_us.map(SimDur::from_us),
                trip_on_exhaustion: cfg.trip_on_exhaustion,
            },
            None => Watchdog::default(),
        }
    }

    /// Whether a recorder was armed when this run started.
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Whether recovery-policy exhaustion should trip (and emit its
    /// incident marker).
    pub fn trips_on_exhaustion(&self) -> bool {
        self.armed && self.trip_on_exhaustion
    }

    /// Whether the periodic sweep has anything to evaluate.
    pub fn sweeps(&self) -> bool {
        self.armed
            && (self.stall_slo.is_some()
                || self.queue_limit.is_some()
                || self.no_progress.is_some())
    }

    /// Largest sim-time gap the loop may leave between sweeps. The
    /// event-count cadence starves on a quiet queue — a wedged barrier
    /// re-issues once an *hour*, so thousands of events never accumulate
    /// — which is exactly when the time-based rules matter most. Half the
    /// tightest bound guarantees a stall is observed within 1.5× its
    /// bound of starting. `None` when no time-based rule is armed.
    pub fn time_cadence(&self) -> Option<SimDur> {
        let tightest = match (self.stall_slo, self.no_progress) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }?;
        Some(SimDur::from_us((tightest.as_us() / 2).max(1)))
    }

    /// Evaluate the sweep rules at `now`: per-job stall SLO (jobs without
    /// a completion entry in `done`, last-progress instants in `last`),
    /// the global no-progress bound, and event-queue depth. First match
    /// wins, jobs in index order — deterministic for a deterministic
    /// event stream.
    pub fn sweep(
        &self,
        now: SimTime,
        last: &[SimTime],
        done: &[Option<SimTime>],
        queue_len: usize,
    ) -> Option<Trip> {
        if !self.armed {
            return None;
        }
        if let Some(slo) = self.stall_slo {
            for (j, at) in last.iter().enumerate() {
                if done.get(j).is_some_and(|c| c.is_some()) {
                    continue;
                }
                let stall = now.since(*at);
                if stall > slo {
                    return Some(Trip {
                        rule: WatchdogRule::JobStall,
                        value: stall.as_us(),
                        limit: slo.as_us(),
                    });
                }
            }
        }
        if let Some(bound) = self.no_progress {
            // The freshest progress instant over *unfinished* jobs: when
            // even that is past the bound, nothing is moving — the event
            // queue is either drained or churning on non-job timers.
            let freshest = last
                .iter()
                .enumerate()
                .filter(|(j, _)| !done.get(*j).is_some_and(|c| c.is_some()))
                .map(|(_, at)| *at)
                .max();
            if let Some(at) = freshest {
                let stall = now.since(at);
                if stall > bound {
                    return Some(Trip {
                        rule: WatchdogRule::NoProgress,
                        value: stall.as_us(),
                        limit: bound.as_us(),
                    });
                }
            }
        }
        if let Some(limit) = self.queue_limit {
            if queue_len as u64 > limit {
                return Some(Trip {
                    rule: WatchdogRule::QueueDepth,
                    value: queue_len as u64,
                    limit,
                });
            }
        }
        None
    }
}

/// Map a run-aborting error to the incident trigger the freeze records:
/// invariant violations are rule trips (1 violation against a budget of
/// 0), everything else freezes as a plain error trigger. A watchdog trip
/// error re-freezes with its own rule — a no-op, since the ring froze at
/// trip time and the first freeze wins.
pub(crate) fn trigger_for_error(e: &SimError) -> IncidentTrigger {
    match e {
        SimError::InvariantViolation { .. } => IncidentTrigger::Watchdog {
            rule: WatchdogRule::Invariant,
            value: 1,
            limit: 0,
            detail: e.to_string(),
        },
        SimError::WatchdogTrip {
            rule, value, limit, ..
        } => IncidentTrigger::Watchdog {
            rule: *rule,
            value: *value,
            limit: *limit,
            detail: String::new(),
        },
        other => IncidentTrigger::Error {
            what: other.to_string(),
        },
    }
}

/// The simulated instant an error carries, µs (0 for pre-run
/// configuration errors) — the freeze timestamp for error unwinds.
pub(crate) fn error_at_us(e: &SimError) -> u64 {
    match e {
        SimError::InvalidConfig(_) | SimError::FaultPlan(_) | SimError::Schedule { .. } => 0,
        SimError::Mem { at_us, .. }
        | SimError::InvariantViolation { at_us, .. }
        | SimError::SimTimeExceeded { at_us, .. }
        | SimError::Deadlock { at_us, .. }
        | SimError::WatchdogTrip { at_us, .. } => *at_us,
    }
}

/// FNV-1a-64 over the config's full debug rendering: a cheap, stable
/// fingerprint binding an incident dump to the exact configuration that
/// produced it (two dumps with different fingerprints are not
/// comparable).
pub(crate) fn config_fingerprint(cfg: &crate::config::ClusterConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn armed(stall_slo_us: Option<u64>, queue_limit: Option<u64>) -> Watchdog {
        Watchdog {
            armed: true,
            stall_slo: stall_slo_us.map(SimDur::from_us),
            queue_limit,
            no_progress: None,
            trip_on_exhaustion: true,
        }
    }

    fn hang_armed(no_progress_us: u64) -> Watchdog {
        Watchdog {
            armed: true,
            stall_slo: None,
            queue_limit: None,
            no_progress: Some(SimDur::from_us(no_progress_us)),
            trip_on_exhaustion: true,
        }
    }

    #[test]
    fn disarmed_watchdog_never_trips() {
        let w = Watchdog::default();
        assert!(!w.armed());
        assert!(!w.sweeps());
        assert!(!w.trips_on_exhaustion());
        assert_eq!(
            w.sweep(
                SimTime::from_us(1_000_000),
                &[SimTime::ZERO],
                &[None],
                10_000
            ),
            None
        );
    }

    #[test]
    fn stall_rule_ignores_finished_jobs_and_reads_stall_duration() {
        let w = armed(Some(500), None);
        assert!(w.sweeps());
        let now = SimTime::from_us(1_000);
        // Job 0 finished long ago, job 1 progressed recently: no trip.
        let last = [SimTime::ZERO, SimTime::from_us(900)];
        let done = [Some(SimTime::from_us(10)), None];
        assert_eq!(w.sweep(now, &last, &done, 0), None);
        // Job 1 now stalls past the SLO.
        let late = SimTime::from_us(1_500);
        let trip = w.sweep(late, &last, &done, 0).expect("stall trip");
        assert_eq!(trip.rule, WatchdogRule::JobStall);
        assert_eq!(trip.value, 600);
        assert_eq!(trip.limit, 500);
        // Exactly at the SLO is not yet a trip (strictly greater).
        assert_eq!(w.sweep(SimTime::from_us(1_400), &last, &done, 0), None);
    }

    #[test]
    fn queue_rule_trips_strictly_above_the_bound() {
        let w = armed(None, Some(100));
        assert_eq!(w.sweep(SimTime::ZERO, &[], &[], 100), None);
        let trip = w.sweep(SimTime::ZERO, &[], &[], 101).expect("queue trip");
        assert_eq!(trip.rule, WatchdogRule::QueueDepth);
        assert_eq!(trip.value, 101);
        assert_eq!(trip.limit, 100);
    }

    #[test]
    fn stall_rule_wins_over_queue_rule() {
        let w = armed(Some(10), Some(1));
        let trip = w
            .sweep(SimTime::from_us(100), &[SimTime::ZERO], &[None], 50)
            .expect("trip");
        assert_eq!(trip.rule, WatchdogRule::JobStall, "first rule wins");
    }

    #[test]
    fn no_progress_trips_only_when_every_unfinished_job_stalls() {
        let w = hang_armed(1_000);
        assert!(w.sweeps());
        let now = SimTime::from_us(10_000);
        // One job still fresh: the run is slow, not hung.
        let last = [SimTime::ZERO, SimTime::from_us(9_500)];
        assert_eq!(w.sweep(now, &last, &[None, None], 0), None);
        // The fresh job finishes; the survivor's stall now dates the run.
        let done = [None, Some(SimTime::from_us(9_600))];
        let trip = w.sweep(now, &last, &done, 0).expect("hang trip");
        assert_eq!(trip.rule, WatchdogRule::NoProgress);
        assert_eq!(trip.value, 10_000);
        assert_eq!(trip.limit, 1_000);
        // All jobs finished: nothing pending, nothing to hang.
        let all_done = [Some(SimTime::ZERO), Some(SimTime::ZERO)];
        assert_eq!(w.sweep(now, &last, &all_done, 0), None);
        // Exactly at the bound is not yet a trip (strictly greater).
        let last = [SimTime::from_us(9_000), SimTime::from_us(9_000)];
        assert_eq!(w.sweep(now, &last, &[None, None], 0), None);
    }

    #[test]
    fn time_cadence_halves_the_tightest_time_bound() {
        assert_eq!(armed(None, Some(5)).time_cadence(), None, "queue-only");
        assert_eq!(Watchdog::default().time_cadence(), None);
        assert_eq!(
            armed(Some(10_000), None).time_cadence(),
            Some(SimDur::from_us(5_000))
        );
        assert_eq!(
            hang_armed(1_800_000_000).time_cadence(),
            Some(SimDur::from_us(900_000_000))
        );
        let mut both = hang_armed(1_000);
        both.stall_slo = Some(SimDur::from_us(10_000));
        assert_eq!(both.time_cadence(), Some(SimDur::from_us(500)));
        assert_eq!(
            hang_armed(1).time_cadence(),
            Some(SimDur::from_us(1)),
            "cadence never rounds to zero"
        );
    }

    #[test]
    fn job_stall_wins_over_no_progress() {
        let mut w = hang_armed(1_000);
        w.stall_slo = Some(SimDur::from_us(500));
        let trip = w
            .sweep(SimTime::from_us(5_000), &[SimTime::ZERO], &[None], 0)
            .expect("trip");
        assert_eq!(trip.rule, WatchdogRule::JobStall, "specific rule first");
    }

    #[test]
    fn invariant_errors_become_rule_trips() {
        let e = SimError::InvariantViolation {
            context: "periodic sweep".to_string(),
            node: Some(1),
            at_us: 777,
            detail: "frame leak".to_string(),
        };
        match trigger_for_error(&e) {
            IncidentTrigger::Watchdog {
                rule,
                value,
                limit,
                detail,
            } => {
                assert_eq!(rule, WatchdogRule::Invariant);
                assert_eq!((value, limit), (1, 0));
                assert!(detail.contains("frame leak"));
            }
            other => panic!("expected watchdog trigger, got {other:?}"),
        }
        assert_eq!(error_at_us(&e), 777);
        let plain = SimError::InvalidConfig("bad".to_string());
        assert!(matches!(
            trigger_for_error(&plain),
            IncidentTrigger::Error { .. }
        ));
        assert_eq!(error_at_us(&plain), 0);
    }
}
