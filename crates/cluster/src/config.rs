//! Cluster and experiment configuration.

use agp_core::PolicyConfig;
use agp_disk::DiskParams;
use agp_faults::FaultPlan;
use agp_net::NetParams;
use agp_sim::units::pages_from_mib;
use agp_sim::SimDur;
use agp_workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// How jobs share the cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleMode {
    /// Gang scheduling: round-robin quanta with coordinated switches.
    Gang,
    /// Batch: jobs run to completion one after the other — the paper's
    /// zero-switch baseline.
    Batch,
}

/// One job submitted to the cluster.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobSpec {
    /// Display name ("LU.B #1").
    pub name: String,
    /// The workload it runs. `workload.nprocs` ranks are placed on nodes
    /// `0..nprocs`, one per node.
    pub workload: WorkloadSpec,
    /// Per-job quantum override (the paper gives SP 7 minutes, §4.2).
    pub quantum: Option<SimDur>,
}

impl JobSpec {
    /// A job with the default quantum.
    pub fn new(name: impl Into<String>, workload: WorkloadSpec) -> Self {
        JobSpec {
            name: name.into(),
            workload,
            quantum: None,
        }
    }
}

/// Full description of one simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes (the paper's testbed: 4 compute nodes + 1
    /// scheduler node; only compute nodes are simulated).
    pub nodes: u32,
    /// Physical memory per node, MiB (paper: 1024).
    pub mem_mib: u64,
    /// Memory wired down per node, MiB — the paper's `mlock()` trick that
    /// reduces usable memory (e.g. 1024 − 350 = 674 for the Fig. 6 setup).
    pub wired_mib: u64,
    /// Paging-device parameters (per node).
    pub disk: DiskParams,
    /// Interconnect parameters.
    pub net: NetParams,
    /// Swap-in read-ahead window override (`None` = Linux 2.2 default 16).
    pub readahead: Option<usize>,
    /// Default gang quantum (paper: 5 minutes).
    pub quantum: SimDur,
    /// Paging policy under test.
    pub policy: PolicyConfig,
    /// Scheduling mode.
    pub mode: ScheduleMode,
    /// Jobs to run.
    pub jobs: Vec<JobSpec>,
    /// Master seed; fixes workload randomness.
    pub seed: u64,
    /// Paging-trace bucket width (Fig. 6 resolution).
    pub trace_bucket: SimDur,
    /// Background-writer tick interval.
    pub bg_tick: SimDur,
    /// Executor chunk size in pages: the granularity at which CPU time is
    /// charged and stops take effect. Smaller = finer interleaving,
    /// more events.
    pub chunk_pages: u32,
    /// Hard wall on simulated time (guards against thrashing livelock in
    /// misconfigured runs).
    pub max_sim_time: SimDur,
    /// Run the conservation/coherence invariant sweep during the
    /// simulation: after every coordinated switch, at each job completion,
    /// periodically in the event loop, and once at the end. A violation
    /// aborts the run with a diagnostic instead of producing silently
    /// wrong results. Enabled by `agp sim --check-invariants` and by
    /// default in the crate's own tests; off in production runs (the sweep
    /// walks every page table).
    #[serde(default)]
    pub check_invariants: bool,
    /// Telemetry sampling cadence. When set (and an observer is attached),
    /// the event loop emits [`agp_obs::ObsEvent::NodeGauge`] and
    /// [`agp_obs::ObsEvent::ProcGauge`] snapshots for every node on this
    /// fixed sim-time period. `None` (the default) schedules no sampling
    /// events at all, so unsampled runs are identical to the seed
    /// simulation event for event.
    #[serde(default)]
    pub sample_every: Option<SimDur>,
    /// Deterministic fault plan (chaos injection). `None` (the default)
    /// runs the seed simulation untouched — no injector is built, no
    /// RNG stream is forked, and the event stream is byte-identical to
    /// a build without the faults subsystem. Set by
    /// `agp sim --faults <plan.json>` and `agp chaos`.
    #[serde(default)]
    pub faults: Option<FaultPlan>,
}

impl ClusterConfig {
    /// The paper's testbed defaults: 1 GiB nodes, 350 MiB usable, 100 Mbps
    /// Ethernet, circa-2003 paging disk, 5-minute quanta, original paging.
    pub fn paper_defaults(nodes: u32) -> Self {
        ClusterConfig {
            nodes,
            mem_mib: 1024,
            wired_mib: 1024 - 350,
            disk: DiskParams::default(),
            net: NetParams::default(),
            readahead: None,
            quantum: SimDur::from_mins(5),
            policy: PolicyConfig::original(),
            mode: ScheduleMode::Gang,
            jobs: Vec::new(),
            seed: 0x5EED_600D,
            trace_bucket: SimDur::from_secs(10),
            bg_tick: SimDur::from_ms(60),
            chunk_pages: 1024,
            max_sim_time: SimDur::from_mins(1_440), // 24 h
            check_invariants: false,
            sample_every: None,
            faults: None,
        }
    }

    /// Usable (non-wired) memory per node, in pages.
    pub fn usable_pages(&self) -> usize {
        pages_from_mib(self.mem_mib.saturating_sub(self.wired_mib))
    }

    /// Validate the configuration; returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 || self.nodes > 64 {
            return Err(format!("nodes must be 1..=64, got {}", self.nodes));
        }
        if self.wired_mib >= self.mem_mib {
            return Err(format!(
                "wired memory {} MiB swallows all of {} MiB",
                self.wired_mib, self.mem_mib
            ));
        }
        if self.jobs.is_empty() {
            return Err("no jobs configured".into());
        }
        if self.chunk_pages == 0 {
            return Err("chunk_pages must be positive".into());
        }
        for job in &self.jobs {
            if job.workload.nprocs > self.nodes {
                return Err(format!(
                    "job '{}' wants {} ranks but the cluster has {} nodes",
                    job.name, job.workload.nprocs, self.nodes
                ));
            }
            let rank_pages = job.workload.footprint_pages_per_rank() as usize;
            // A single rank larger than usable memory + swap cannot run.
            if rank_pages > self.usable_pages() + self.disk.blocks as usize {
                return Err(format!(
                    "job '{}' footprint {} pages exceeds memory+swap",
                    job.name, rank_pages
                ));
            }
        }
        // Swap must hold the worst case: every job's rank image on the
        // most loaded node simultaneously.
        let per_node_pages: usize = self
            .jobs
            .iter()
            .filter(|j| j.workload.nprocs >= 1)
            .map(|j| j.workload.footprint_pages_per_rank() as usize)
            .sum();
        if per_node_pages > self.disk.blocks as usize {
            return Err(format!(
                "swap of {} blocks cannot back {} pages of job images per node",
                self.disk.blocks, per_node_pages
            ));
        }
        if let Some(plan) = &self.faults {
            plan.validate(self.nodes as usize, self.jobs.len())
                .map_err(|e| format!("fault plan: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agp_workload::{Benchmark, Class};

    fn cfg() -> ClusterConfig {
        let mut c = ClusterConfig::paper_defaults(4);
        c.jobs.push(JobSpec::new(
            "LU.C #1",
            WorkloadSpec::parallel(Benchmark::LU, Class::C, 4),
        ));
        c
    }

    #[test]
    fn paper_defaults_match_section_4() {
        let c = cfg();
        assert_eq!(c.usable_pages(), pages_from_mib(350));
        assert_eq!(c.quantum, SimDur::from_mins(5));
        assert_eq!(c.trace_bucket, SimDur::from_secs(10));
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_shapes() {
        let mut c = cfg();
        c.nodes = 0;
        assert!(c.validate().is_err());

        let mut c = cfg();
        c.wired_mib = c.mem_mib;
        assert!(c.validate().is_err());

        let mut c = cfg();
        c.jobs.clear();
        assert!(c.validate().is_err());

        let mut c = cfg();
        c.jobs[0].workload.nprocs = 9;
        assert!(c.validate().is_err());

        let mut c = cfg();
        c.disk.blocks = 16;
        assert!(c.validate().is_err(), "swap too small");
    }

    #[test]
    fn quantum_override_travels_with_job() {
        let mut c = cfg();
        c.jobs[0].quantum = Some(SimDur::from_mins(7));
        c.validate().unwrap();
        assert_eq!(c.jobs[0].quantum, Some(SimDur::from_mins(7)));
    }
}
