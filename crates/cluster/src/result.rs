//! Results of one simulation run.

use agp_core::{EngineStats, PolicyConfig};
use agp_disk::DiskStats;
use agp_metrics::ActivityTrace;
use agp_sim::{SimDur, SimTime};
use agp_workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::config::ScheduleMode;

/// Schema version stamped into every serialized [`RunResult`]. Bump on any
/// breaking change to the JSON shape so downstream consumers (`report.json`
/// goldens, archived traces) can detect files they no longer understand.
pub const RESULT_SCHEMA_VERSION: u32 = 1;

/// Outcome of one job.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobResult {
    /// Job name from the config.
    pub name: String,
    /// Workload it ran.
    pub workload: WorkloadSpec,
    /// Instant the last rank finished.
    pub completion: SimTime,
    /// Work iterations completed (sanity: equals the spec's count).
    pub iterations: u32,
}

/// Per-node accounting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeReport {
    /// Paging-device statistics.
    pub disk: DiskStats,
    /// Paging-engine statistics.
    pub engine: EngineStats,
    /// Pages cleaned by the background writer.
    pub bg_cleaned_pages: u64,
    /// Paging-activity trace.
    pub trace: ActivityTrace,
}

/// Everything a finished run reports.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Serialization schema version (see [`RESULT_SCHEMA_VERSION`]);
    /// defaults to 0 ("unversioned") when reading files that predate it.
    #[serde(default)]
    pub schema_version: u32,
    /// Policy the run used.
    pub policy: PolicyConfig,
    /// Scheduling mode.
    pub mode: ScheduleMode,
    /// Seed the run used.
    pub seed: u64,
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobResult>,
    /// Time at which every job had finished.
    pub makespan: SimDur,
    /// Per-node accounting.
    pub nodes: Vec<NodeReport>,
    /// Gang switches performed.
    pub switches: u64,
    /// Events processed (diagnostics).
    pub events: u64,
    /// Invariant sweeps performed (0 unless the run was started with
    /// `check_invariants`; each sweep covers every node's kernel and
    /// engine). A run that returns at all had zero violations — a
    /// violation aborts with an error.
    pub invariant_checks: u64,
}

impl RunResult {
    /// Completion time of the job named `name`.
    pub fn completion_of(&self, name: &str) -> Option<SimTime> {
        self.jobs
            .iter()
            .find(|j| j.name == name)
            .map(|j| j.completion)
    }

    /// Mean job completion time (the metric Moreira et al. report for the
    /// motivation experiment).
    pub fn mean_completion(&self) -> SimDur {
        if self.jobs.is_empty() {
            return SimDur::ZERO;
        }
        let total: u64 = self.jobs.iter().map(|j| j.completion.as_us()).sum();
        SimDur::from_us(total / self.jobs.len() as u64)
    }

    /// Total pages paged in across all nodes.
    pub fn total_pages_in(&self) -> u64 {
        self.nodes.iter().map(|n| n.disk.pages_read).sum()
    }

    /// Total pages paged out across all nodes.
    pub fn total_pages_out(&self) -> u64 {
        self.nodes.iter().map(|n| n.disk.pages_written).sum()
    }

    /// All nodes' traces merged into one cluster-wide activity series.
    pub fn merged_trace(&self) -> ActivityTrace {
        let mut it = self.nodes.iter();
        let Some(first) = it.next() else {
            return ActivityTrace::new(agp_sim::SimDur::from_secs(10));
        };
        let mut merged = first.trace.clone();
        for n in it {
            merged.merge(&n.trace);
        }
        merged
    }

    /// Per-job *solo* durations implied by a batch-mode run: in batch the
    /// jobs execute back to back, so job i's solo time is the gap between
    /// consecutive completions. Returns `None` for gang-mode results
    /// (completions overlap there).
    pub fn solo_durations(&self) -> Option<Vec<SimDur>> {
        if self.mode != ScheduleMode::Batch {
            return None;
        }
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by_key(|&i| self.jobs[i].completion);
        let mut prev = SimTime::ZERO;
        let mut out = vec![SimDur::ZERO; self.jobs.len()];
        for idx in order {
            out[idx] = self.jobs[idx].completion.since(prev);
            prev = self.jobs[idx].completion;
        }
        Some(out)
    }

    /// Per-job slowdown relative to a batch run of the same jobs:
    /// `gang_completion / solo_duration`. This is the responsiveness
    /// metric gang scheduling exists to improve — a job's turnaround
    /// under timesharing versus running alone.
    ///
    /// Returns `None` when the shapes don't match or `batch` is not a
    /// batch-mode result.
    pub fn slowdowns_vs(&self, batch: &RunResult) -> Option<Vec<f64>> {
        let solos = batch.solo_durations()?;
        if solos.len() != self.jobs.len() {
            return None;
        }
        Some(
            self.jobs
                .iter()
                .zip(&solos)
                .map(|(j, solo)| {
                    if solo.as_us() == 0 {
                        1.0
                    } else {
                        j.completion.as_us() as f64 / solo.as_us() as f64
                    }
                })
                .collect(),
        )
    }

    /// Mean of [`RunResult::slowdowns_vs`].
    pub fn mean_slowdown_vs(&self, batch: &RunResult) -> Option<f64> {
        let s = self.slowdowns_vs(batch)?;
        if s.is_empty() {
            return None;
        }
        Some(s.iter().sum::<f64>() / s.len() as f64)
    }

    /// Aggregate engine statistics across nodes.
    pub fn total_engine_stats(&self) -> EngineStats {
        let mut acc = EngineStats::default();
        for n in &self.nodes {
            let s = n.engine;
            acc.major_faults += s.major_faults;
            acc.minor_faults += s.minor_faults;
            acc.readahead_pages += s.readahead_pages;
            acc.reclaim_calls += s.reclaim_calls;
            acc.reclaimed_pages += s.reclaimed_pages;
            acc.false_evictions += s.false_evictions;
            acc.aggressive_evictions += s.aggressive_evictions;
            acc.recorded_pages += s.recorded_pages;
            acc.replayed_pages += s.replayed_pages;
            acc.replay_skipped += s.replay_skipped;
        }
        acc
    }
}
