//! Simulated process state for the executor.

use agp_mem::ProcId;
use agp_sim::{SimDur, SimTime};
use agp_workload::ProcessProgram;
use gang_ids::JobId;

// The gang crate names; re-exported locally to keep imports tidy.
mod gang_ids {
    pub use agp_gang::JobId;
}

/// Why a process is not currently consuming CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// Waiting for paging I/O (its fault plan) to complete.
    Io,
    /// Waiting inside a job-wide barrier.
    Barrier,
}

/// Executor state of one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PState {
    /// SIGSTOPped (descheduled by the gang scheduler) or not yet started.
    Stopped,
    /// Eligible to run; has a Dispatch event in flight.
    Runnable,
    /// Blocked in the kernel.
    Blocked(BlockKind),
    /// Workload complete.
    Done,
}

/// A partially executed step, resumed on the next dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CurStep {
    /// A touch run with `done` pages already processed.
    Touch {
        /// First page of the run.
        first: u32,
        /// Total run length.
        len: u32,
        /// Pages already touched.
        done: u32,
        /// Whether touches write.
        write: bool,
        /// CPU per touched page.
        cpu_per_page: SimDur,
    },
}

/// One simulated process (one rank of one job, pinned to one node).
#[derive(Clone, Debug)]
pub struct SimProc {
    /// Kernel-visible process id.
    pub pid: ProcId,
    /// Owning job.
    pub job: JobId,
    /// Node index the rank is pinned to.
    pub node: usize,
    /// Rank within the job.
    pub rank: u32,
    /// The workload program.
    pub program: ProcessProgram,
    /// Partially executed step, if any.
    pub cur: Option<CurStep>,
    /// Executor state.
    pub state: PState,
    /// Event generation: Dispatch/IoDone events carry the generation they
    /// were scheduled under; stale events are ignored. Bumped whenever the
    /// process's future is rescheduled out from under an in-flight event.
    pub gen: u64,
    /// A STOP signal has been delivered but not yet acted on (stops take
    /// effect at the next dispatch/wake boundary).
    pub stop_pending: bool,
    /// Completion instant, once Done.
    pub finished_at: Option<SimTime>,
    /// Work iterations completed (excludes the init pass).
    pub iterations_done: u32,
    /// Cumulative time spent Blocked(Io) (diagnostics).
    pub io_blocked: SimDur,
    /// Instant the current Io block began.
    pub io_block_start: Option<SimTime>,
}

impl SimProc {
    /// A stopped process ready to be scheduled for the first time.
    pub fn new(pid: ProcId, job: JobId, node: usize, rank: u32, program: ProcessProgram) -> Self {
        SimProc {
            pid,
            job,
            node,
            rank,
            program,
            cur: None,
            state: PState::Stopped,
            gen: 0,
            stop_pending: false,
            finished_at: None,
            iterations_done: 0,
            io_blocked: SimDur::ZERO,
            io_block_start: None,
        }
    }

    /// Invalidate in-flight events for this process and return the new
    /// generation.
    pub fn bump_gen(&mut self) -> u64 {
        self.gen += 1;
        self.gen
    }

    /// Whether `gen` matches the live generation.
    pub fn live(&self, gen: u64) -> bool {
        self.gen == gen
    }

    /// Begin an Io block at `now`.
    pub fn block_io(&mut self, now: SimTime) {
        self.state = PState::Blocked(BlockKind::Io);
        self.io_block_start = Some(now);
    }

    /// End an Io block at `now`, accumulating blocked time.
    pub fn unblock_io(&mut self, now: SimTime) {
        if let Some(t0) = self.io_block_start.take() {
            self.io_blocked += now.since(t0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agp_workload::{Benchmark, Class, WorkloadSpec};

    fn proc() -> SimProc {
        let spec = WorkloadSpec::serial(Benchmark::IS, Class::A);
        SimProc::new(ProcId(7), JobId(0), 0, 0, ProcessProgram::new(spec, 0, 1))
    }

    #[test]
    fn generation_invalidation() {
        let mut p = proc();
        let g0 = p.gen;
        assert!(p.live(g0));
        let g1 = p.bump_gen();
        assert!(!p.live(g0));
        assert!(p.live(g1));
    }

    #[test]
    fn io_block_accounting() {
        let mut p = proc();
        p.block_io(SimTime::from_secs(10));
        assert_eq!(p.state, PState::Blocked(BlockKind::Io));
        p.unblock_io(SimTime::from_secs(14));
        assert_eq!(p.io_blocked, SimDur::from_secs(4));
        // Unblocking twice is harmless.
        p.unblock_io(SimTime::from_secs(20));
        assert_eq!(p.io_blocked, SimDur::from_secs(4));
    }

    #[test]
    fn starts_stopped() {
        let p = proc();
        assert_eq!(p.state, PState::Stopped);
        assert!(!p.stop_pending);
        assert!(p.cur.is_none());
    }
}
