//! # agp-cluster — node assembly and the master simulation loop
//!
//! This crate turns the substrates into the paper's testbed: a cluster of
//! nodes (each with a VM kernel, a paging engine, and a paging disk),
//! connected by a network, running gang-scheduled synthetic NPB2 jobs.
//!
//! The architecture mirrors the paper's Fig. 5:
//!
//! ```text
//!   GangScheduler (user level)          agp-gang
//!        │ STOP / CONT signals
//!        │ adaptive_page_out / adaptive_page_in / start_bgwrite
//!        ▼
//!   PagingEngine (kernel policy)        agp-core
//!        ▼ mechanisms
//!   Kernel (VM)  ── swap I/O ──▶ Disk   agp-mem / agp-disk
//! ```
//!
//! [`ClusterSim`] owns the event queue; processes execute their workload
//! programs step by step, faulting against their node's kernel, blocking
//! on the node's FIFO paging disk, and synchronizing through barriers.
//! Everything is deterministic given [`ClusterConfig::seed`].
//!
//! Two scheduling modes reproduce the paper's comparisons:
//! * [`ScheduleMode::Gang`] — round-robin quanta with the full switch
//!   protocol (STOP → adaptive paging → CONT);
//! * [`ScheduleMode::Batch`] — jobs run back-to-back, the `batch` baseline
//!   whose completion time anchors the overhead metrics (§4.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod harness;
pub mod monitor;
pub mod proc;
pub mod result;
pub mod sim;
mod watchdog;

pub use config::{ClusterConfig, JobSpec, ScheduleMode};
pub use error::SimError;
pub use harness::{classify, classify_with, counter_tiling_violation, VerdictReport};
pub use monitor::{MetricsSnapshot, MonitorHub};
pub use result::{JobResult, NodeReport, RunResult, RESULT_SCHEMA_VERSION};
pub use sim::ClusterSim;

/// Run a configuration to completion (convenience wrapper).
///
/// Errors are typed ([`SimError`]) with node/time provenance;
/// `From<SimError> for String` keeps legacy string-error callers
/// compiling through `?`.
pub fn run(config: ClusterConfig) -> Result<RunResult, SimError> {
    ClusterSim::new(config)?.run()
}

/// Run a configuration with an observation link attached (see
/// [`ClusterSim::attach_observer`] for how sinks and source tags are
/// wired).
pub fn run_observed(config: ClusterConfig, link: &agp_obs::ObsLink) -> Result<RunResult, SimError> {
    let mut sim = ClusterSim::new(config)?;
    sim.attach_observer(link);
    sim.run()
}
