//! The fuzzer's double-run verdict harness.
//!
//! [`classify`] runs one configuration **twice** under an armed flight
//! recorder and maps the outcome pair onto the closed
//! [`Verdict`](agp_faults::fuzz::Verdict) taxonomy. Two runs because
//! nondeterminism is itself a verdict: the traces, counters, errors, and
//! incident dumps of both runs must agree byte for byte, or the finding
//! is `Nondeterministic` regardless of how either run ended.
//!
//! The harness owns the process-global flight recorder while it runs
//! (arming, collecting the incident, disarming), so callers must not
//! have their own recorder armed around it.

use crate::config::ClusterConfig;
use crate::error::SimError;
use crate::result::RunResult;
use agp_faults::fuzz::Verdict;
use agp_obs::flight::{self, FlightConfig, IncidentDump};
use agp_obs::{shared, Collector, JsonlWriter, ObsCounters, ObsLink, SharedSink, WatchdogRule};

/// The fuzz harness's no-progress (hang) bound, sim-µs. Generous: the
/// worst *legitimate* global stall a generated plan can cause is a full
/// barrier re-issue ladder (≤ 10 re-issues at ≤ 60 s default timeout),
/// so half an hour of zero job progress means wedged, not slow.
pub const FUZZ_NO_PROGRESS_US: u64 = 1_800_000_000;

/// The fuzz harness's event-queue bound (runaway self-scheduling).
pub const FUZZ_QUEUE_LIMIT: u64 = 1_000_000;

/// The fixed flight configuration every fuzzed run is classified under.
/// Part of the reproducibility contract: corpus entries replay against
/// these exact rules, so the knobs are constants, not CLI flags.
pub fn fuzz_flight_config() -> FlightConfig {
    FlightConfig {
        no_progress_us: Some(FUZZ_NO_PROGRESS_US),
        queue_limit: Some(FUZZ_QUEUE_LIMIT),
        ..FlightConfig::default()
    }
}

/// Everything the fuzzer needs to triage one classified run.
#[derive(Clone, Debug)]
pub struct VerdictReport {
    /// The closed classification.
    pub verdict: Verdict,
    /// Human detail for failing verdicts (which component diverged, what
    /// the tiling mismatch was, the run error's rendering).
    pub detail: String,
    /// Typed fault counters from the first run.
    pub counters: ObsCounters,
    /// First run's full JSONL event stream.
    pub trace: Vec<u8>,
    /// The run error's rendering, when the run aborted.
    pub error: Option<String>,
    /// The frozen incident dump, when the flight recorder froze.
    pub incident: Option<IncidentDump>,
}

/// The fault/recovery counter-tiling invariant (audited here and by
/// `agp chaos --verify`):
///
/// * every injected disk error schedules exactly one retry, and
///   exhausted budgets force the attempt through as a success — so
///   `fault_io_retries` must equal `fault_disk_errors` (attempts minus
///   successes) on any *completed* run;
/// * adaptive page-in degrades a node at most once, so
///   `fault_ai_degrades` is bounded by the node count;
/// * a node restarts only after a crash, so restarts never exceed
///   crashes.
pub fn counter_tiling_violation(c: &ObsCounters, nodes: u32) -> Option<String> {
    if c.fault_io_retries != c.fault_disk_errors {
        return Some(format!(
            "io retries ({}) != disk errors ({}): a retry was dropped or double-counted",
            c.fault_io_retries, c.fault_disk_errors
        ));
    }
    if c.fault_ai_degrades > u64::from(nodes) {
        return Some(format!(
            "ai degradations ({}) exceed node count ({nodes}): a node degraded twice",
            c.fault_ai_degrades
        ));
    }
    if c.fault_node_restarts > c.fault_node_crashes {
        return Some(format!(
            "node restarts ({}) exceed crashes ({})",
            c.fault_node_restarts, c.fault_node_crashes
        ));
    }
    None
}

struct RunCapture {
    outcome: Result<RunResult, SimError>,
    counters: ObsCounters,
    trace: Vec<u8>,
    incident: Option<IncidentDump>,
}

fn one_run(cfg: &ClusterConfig, watch: &FlightConfig) -> Result<RunCapture, String> {
    flight::arm(watch.clone());
    let collector = shared(Collector::new());
    let mem = shared(JsonlWriter::new(Vec::new()));
    let link = ObsLink::fanout(vec![
        collector.clone() as SharedSink,
        mem.clone() as SharedSink,
    ]);
    let outcome = crate::run_observed(cfg.clone(), &link);
    drop(link);
    let incident = flight::take_incident();
    flight::disarm();
    let counters = unwrap_shared(collector)?.counters;
    let trace = unwrap_shared(mem)?
        .finish()
        .map_err(|e| format!("event capture: {e}"))?;
    Ok(RunCapture {
        outcome,
        counters,
        trace,
        incident,
    })
}

fn unwrap_shared<T>(sink: std::sync::Arc<std::sync::Mutex<T>>) -> Result<T, String> {
    let mutex = std::sync::Arc::try_unwrap(sink)
        .map_err(|_| "observer sink still shared after the run".to_string())?;
    Ok(mutex
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner))
}

/// Classify `cfg` under the fixed [`fuzz_flight_config`] rule set.
pub fn classify(cfg: &ClusterConfig) -> Result<VerdictReport, String> {
    classify_with(cfg, &fuzz_flight_config())
}

/// Classify `cfg` under an explicit flight configuration: run twice,
/// demand byte-identical behavior, then map the (deterministic) outcome
/// onto the verdict taxonomy. `Err` is harness plumbing only (sink
/// recovery); every simulation outcome, including aborts, is a verdict.
pub fn classify_with(cfg: &ClusterConfig, watch: &FlightConfig) -> Result<VerdictReport, String> {
    let a = one_run(cfg, watch)?;
    let b = one_run(cfg, watch)?;
    if let Some(diverged) = divergence(&a, &b) {
        return Ok(VerdictReport {
            verdict: Verdict::Nondeterministic,
            detail: format!("same-seed double run diverged: {diverged}"),
            counters: a.counters,
            trace: a.trace,
            error: a.outcome.err().map(|e| e.to_string()),
            incident: a.incident,
        });
    }
    let (verdict, detail) = match &a.outcome {
        Err(SimError::WatchdogTrip { rule, .. }) if *rule == WatchdogRule::NoProgress => {
            (Verdict::Hang, a.outcome.as_ref().unwrap_err().to_string())
        }
        Err(SimError::WatchdogTrip { .. }) => (
            Verdict::WatchdogTrip,
            a.outcome.as_ref().unwrap_err().to_string(),
        ),
        Err(SimError::InvariantViolation { .. }) => (
            Verdict::InvariantViolation,
            a.outcome.as_ref().unwrap_err().to_string(),
        ),
        Err(e) => (Verdict::TypedError, e.to_string()),
        Ok(_) => match counter_tiling_violation(&a.counters, cfg.nodes) {
            Some(violation) => (
                Verdict::InvariantViolation,
                format!("counter tiling: {violation}"),
            ),
            None if faults_fired(&a.counters) => (Verdict::Recovered, String::new()),
            None => (Verdict::Clean, String::new()),
        },
    };
    let error = a.outcome.err().map(|e| e.to_string());
    Ok(VerdictReport {
        verdict,
        detail,
        counters: a.counters,
        trace: a.trace,
        error,
        incident: a.incident,
    })
}

fn faults_fired(c: &ObsCounters) -> bool {
    c.fault_disk_errors
        + c.fault_disk_slow_us
        + c.fault_io_retries
        + c.fault_node_crashes
        + c.fault_node_restarts
        + c.fault_jobs_requeued
        + c.fault_barrier_timeouts
        + c.fault_mem_pressure_pages
        + c.fault_ai_degrades
        > 0
}

fn divergence(a: &RunCapture, b: &RunCapture) -> Option<&'static str> {
    if a.trace != b.trace {
        return Some("event traces");
    }
    if format!("{:?}", a.counters) != format!("{:?}", b.counters) {
        return Some("fault counters");
    }
    let err_of = |r: &RunCapture| r.outcome.as_ref().err().map(|e| e.to_string());
    if err_of(a) != err_of(b) {
        return Some("run errors");
    }
    let dump_of = |r: &RunCapture| r.incident.as_ref().map(|d| d.to_json_string());
    if dump_of(a) != dump_of(b) {
        return Some("incident dumps");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JobSpec;
    use crate::ScheduleMode;
    use agp_core::PolicyConfig;
    use agp_faults::{FaultPlan, FaultSpec, RecoveryPolicy};
    use agp_sim::SimDur;
    use agp_workload::{Benchmark, Class, WorkloadSpec};

    /// The flight recorder is process-global: serialize every test that
    /// arms it (same pattern as `agp_obs::flight`'s own tests).
    fn hub_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn cfg_with(plan: FaultPlan) -> ClusterConfig {
        let mut cfg = ClusterConfig::paper_defaults(2);
        cfg.mem_mib = 64;
        cfg.wired_mib = 24;
        cfg.quantum = SimDur::from_secs(5);
        cfg.policy = PolicyConfig::full();
        cfg.mode = ScheduleMode::Gang;
        cfg.jobs = vec![
            JobSpec::new(
                "CG.A x2 #1",
                WorkloadSpec::parallel(Benchmark::CG, Class::A, 2),
            ),
            JobSpec::new(
                "CG.A x2 #2",
                WorkloadSpec::parallel(Benchmark::CG, Class::A, 2),
            ),
        ];
        cfg.faults = Some(plan);
        cfg
    }

    #[test]
    fn faultless_run_is_clean_and_leaves_no_incident() {
        let _g = hub_lock();
        let report = classify(&cfg_with(FaultPlan::empty(3))).unwrap();
        assert_eq!(report.verdict, Verdict::Clean);
        assert!(report.error.is_none());
        assert!(report.incident.is_none());
        assert!(!report.trace.is_empty());
        assert!(!flight::armed(), "harness must disarm after itself");
    }

    #[test]
    fn surviving_faults_classify_as_recovered_with_tiling_counters() {
        let _g = hub_lock();
        let report = classify(&cfg_with(FaultPlan::smoke(3))).unwrap();
        assert_eq!(report.verdict, Verdict::Recovered, "{}", report.detail);
        assert!(faults_fired(&report.counters));
        assert_eq!(
            counter_tiling_violation(&report.counters, 2),
            None,
            "smoke recovery must tile"
        );
    }

    #[test]
    fn exhausted_recovery_classifies_as_watchdog_trip_with_incident() {
        let _g = hub_lock();
        let report = classify(&cfg_with(FaultPlan::trip(3))).unwrap();
        assert_eq!(report.verdict, Verdict::WatchdogTrip);
        let incident = report.incident.expect("trip freezes the ring");
        assert!(incident.to_json_string().contains("recovery_exhausted"));
    }

    #[test]
    fn a_total_barrier_blackout_classifies_as_hang() {
        let _g = hub_lock();
        // Job 0's releases always drop and the re-issue timeout is pushed
        // past the no-progress bound: once job 1 finishes, nothing in the
        // cluster makes progress until the watchdog calls it a hang.
        let mut plan = FaultPlan::empty(3);
        plan.faults = vec![FaultSpec::BarrierDrops {
            job: 0,
            p: 1.0,
            from_us: 0,
            until_us: u64::MAX,
        }];
        plan.recovery = RecoveryPolicy {
            barrier_timeout_us: 3_600_000_000,
            ..RecoveryPolicy::default()
        };
        let report = classify(&cfg_with(plan)).unwrap();
        assert_eq!(report.verdict, Verdict::Hang, "{}", report.detail);
        let incident = report.incident.expect("hang freezes the ring");
        assert!(incident.to_json_string().contains("no_progress"));
    }

    #[test]
    fn tiling_violations_are_detected() {
        let mut c = ObsCounters {
            fault_disk_errors: 3,
            fault_io_retries: 2,
            ..ObsCounters::default()
        };
        assert!(counter_tiling_violation(&c, 2)
            .expect("mismatch detected")
            .contains("retries"));
        c.fault_io_retries = 3;
        assert_eq!(counter_tiling_violation(&c, 2), None);
        c.fault_ai_degrades = 3;
        assert!(counter_tiling_violation(&c, 2).is_some());
    }
}
