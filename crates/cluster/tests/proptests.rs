//! Property tests over the fault-injection surface: any in-range seeded
//! fault plan either completes the run or surfaces a typed [`SimError`] —
//! never a panic, never a hang — and equal (seed, plan) pairs replay to
//! identical results.
//!
//! Requires the real `proptest`; the offline stub-build scratch drops this
//! file (see `.claude/skills/verify/SKILL.md`).

use agp_cluster::{ClusterConfig, ClusterSim, JobSpec, ScheduleMode, SimError};
use agp_core::PolicyConfig;
use agp_faults::{FaultPlan, FaultSpec};
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};
use proptest::prelude::*;

const NODES: u32 = 2;
const JOBS: usize = 2;

/// The sim unit tests' two-node pressured geometry: two 2-rank CG.A
/// instances, 64 MiB nodes wired to 24 MiB, 5 s quanta. Small enough that
/// a property case runs in tens of milliseconds.
fn chaos_cfg(seed: u64, plan: FaultPlan) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_defaults(NODES);
    cfg.mem_mib = 64;
    cfg.wired_mib = 24;
    cfg.quantum = SimDur::from_secs(5);
    cfg.trace_bucket = SimDur::from_secs(1);
    cfg.policy = PolicyConfig::full();
    cfg.mode = ScheduleMode::Gang;
    cfg.seed = seed;
    cfg.jobs = (0..JOBS)
        .map(|i| {
            JobSpec::new(
                format!("CG.A x2 #{}", i + 1),
                WorkloadSpec::parallel(Benchmark::CG, Class::A, NODES),
            )
        })
        .collect();
    cfg.check_invariants = true;
    cfg.faults = Some(plan);
    cfg
}

/// One non-crash fault spec with parameters inside the validated ranges.
/// Fault windows stay within the first two minutes of sim time — past any
/// makespan this geometry produces, so out-of-window specs are also
/// exercised (they must be inert, not fatal).
fn non_crash_spec() -> impl Strategy<Value = FaultSpec> {
    let window = (0u64..60_000_000, 1_000_000u64..120_000_000);
    prop_oneof![
        (0..NODES, 0.0f64..=1.0, window).prop_map(|(node, p, (from_us, until_us))| {
            FaultSpec::DiskErrors {
                node,
                p,
                from_us,
                until_us,
            }
        }),
        (0..NODES, 1u64..50_000, 0.0f64..=1.0, window).prop_map(
            |(node, penalty_us, p, (from_us, until_us))| FaultSpec::DiskSlow {
                node,
                penalty_us,
                p,
                from_us,
                until_us,
            }
        ),
        (0..JOBS as u32, 0.0f64..=0.5, window).prop_map(|(job, p, (from_us, until_us))| {
            FaultSpec::BarrierDrops {
                job,
                p,
                from_us,
                until_us,
            }
        }),
        (0..NODES, 0u64..60_000_000, 1u64..2048)
            .prop_map(|(node, at_us, pages)| { FaultSpec::MemPressure { node, at_us, pages } }),
    ]
}

/// A whole plan: up to three non-crash specs plus at most one node crash
/// (two overlapping crashes would leave zero schedulable nodes, which the
/// gang scheduler treats as a stall rather than a fault scenario).
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        prop::collection::vec(non_crash_spec(), 0..3),
        prop::option::of((0..NODES, 1u64..90_000_000, 1u64..30_000_000)),
        1u32..6,
        1u32..5,
    )
        .prop_map(|(seed, mut faults, crash, io_retries, ai_degrade_after)| {
            if let Some((node, at_us, down_us)) = crash {
                faults.push(FaultSpec::NodeCrash {
                    node,
                    at_us,
                    down_us,
                });
            }
            let mut plan = FaultPlan::empty(seed);
            plan.faults = faults;
            plan.recovery.io_retries = io_retries;
            plan.recovery.ai_degrade_after = ai_degrade_after;
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Liveness under arbitrary in-range plans: the run either completes
    /// (every job done, nonzero makespan) or returns a typed error. A
    /// panic or a hang fails the test; there is no third outcome.
    #[test]
    fn any_seeded_plan_completes_or_errors(seed in any::<u64>(), plan in plan_strategy()) {
        prop_assert!(plan.validate(NODES as usize, JOBS).is_ok());
        let cfg = chaos_cfg(seed, plan);
        prop_assert!(cfg.validate().is_ok());
        match ClusterSim::new(cfg).and_then(|sim| sim.run()) {
            Ok(r) => {
                prop_assert_eq!(r.jobs.len(), JOBS);
                prop_assert!(r.makespan.as_us() > 0);
            }
            Err(e) => {
                // Typed, printable, and stable enough to match on.
                let _: &SimError = &e;
                prop_assert!(!e.to_string().is_empty());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Determinism under faults: the same (seed, plan) pair replays to an
    /// identical result — makespan, event log, and paging totals.
    #[test]
    fn same_seed_and_plan_replay_identically(seed in any::<u64>(), plan in plan_strategy()) {
        let run = || ClusterSim::new(chaos_cfg(seed, plan.clone())).and_then(|s| s.run());
        match (run(), run()) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.makespan, b.makespan);
                prop_assert_eq!(a.events, b.events);
                prop_assert_eq!(a.total_pages_in(), b.total_pages_in());
                prop_assert_eq!(a.total_pages_out(), b.total_pages_out());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "diverged: {:?} vs {:?}", a.map(|r| r.makespan), b.map(|r| r.makespan)),
        }
    }
}
