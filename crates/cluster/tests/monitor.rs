//! Integration tests for the live-monitor seam
//! (`crates/cluster/src/monitor.rs`): snapshot cadence, observation
//! transparency, hub attach/detach, and global-hook replacement.
//!
//! The [`MonitorHub`] is process-global, so every test that touches it
//! holds `HUB_LOCK` — integration tests in one binary run on concurrent
//! threads and an unserialized install/uninstall would steal another
//! test's tap.

use std::sync::mpsc::{channel, Receiver, TryRecvError};
use std::sync::Mutex;

use agp_cluster::{
    ClusterConfig, ClusterSim, JobSpec, MetricsSnapshot, MonitorHub, RunResult, ScheduleMode,
};
use agp_core::PolicyConfig;
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

static HUB_LOCK: Mutex<()> = Mutex::new(());

/// Small pressured config (same geometry as the sim unit tests): enough
/// memory pressure to page, short enough to run in milliseconds.
fn tiny_cfg(jobs: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_defaults(1);
    cfg.mem_mib = 128;
    cfg.wired_mib = 64;
    cfg.quantum = SimDur::from_secs(10);
    cfg.policy = PolicyConfig::full();
    cfg.mode = ScheduleMode::Gang;
    cfg.jobs = (0..jobs)
        .map(|i| {
            JobSpec::new(
                format!("LU.A #{}", i + 1),
                WorkloadSpec::serial(Benchmark::LU, Class::A),
            )
        })
        .collect();
    cfg
}

fn drain(rx: &Receiver<MetricsSnapshot>) -> Vec<MetricsSnapshot> {
    std::iter::from_fn(|| rx.try_recv().ok()).collect()
}

#[test]
fn attached_monitor_snapshots_have_cadence_and_do_not_perturb_the_run() {
    let baseline = agp_cluster::run(tiny_cfg(2)).expect("unmonitored run");

    let (tx, rx) = channel();
    let every = SimDur::from_secs(10);
    let mut sim = ClusterSim::new(tiny_cfg(2)).expect("sim");
    sim.attach_monitor(tx, every);
    let monitored: RunResult = sim.run().expect("monitored run");

    // Observation transparency: a monitored run's result is identical.
    assert_eq!(monitored.seed, baseline.seed);
    assert_eq!(monitored.makespan, baseline.makespan);
    assert_eq!(monitored.switches, baseline.switches);
    assert_eq!(monitored.total_pages_in(), baseline.total_pages_in());
    assert_eq!(monitored.total_pages_out(), baseline.total_pages_out());

    let snaps = drain(&rx);
    assert!(snaps.len() >= 2, "at least the t=0 and final snapshots");

    // Cadence: seq is contiguous from 0; periodic snapshots land exactly
    // on multiples of `every` (monitor events never stall in the queue);
    // sim time and the counters are nondecreasing.
    for (i, s) in snaps.iter().enumerate() {
        assert_eq!(s.seq, i as u64, "seq is contiguous from 0");
        assert_eq!(s.jobs_total, 2);
        if !s.done {
            assert_eq!(
                s.sim_us,
                i as u64 * every.as_us(),
                "periodic snapshot #{i} lands on the cadence grid"
            );
        }
        if i > 0 {
            assert!(s.sim_us >= snaps[i - 1].sim_us, "sim time nondecreasing");
            assert!(s.events >= snaps[i - 1].events, "event count nondecreasing");
            assert!(s.jobs_done >= snaps[i - 1].jobs_done);
        }
    }

    // Exactly one final snapshot, it is last, and it agrees with the
    // run result.
    assert_eq!(snaps.iter().filter(|s| s.done).count(), 1);
    let last = snaps.last().unwrap();
    assert!(last.done, "final snapshot is the last one");
    assert_eq!(last.sim_us, monitored.makespan.as_us());
    assert_eq!(last.switches, monitored.switches);
    assert_eq!(last.jobs_done, 2);

    // The label encodes the run geometry.
    assert_eq!(
        last.label,
        format!("2j/1n {} Gang", PolicyConfig::full().label())
    );
}

#[test]
fn hub_installed_sims_pick_up_the_tap_and_uninstall_detaches() {
    let _g = HUB_LOCK.lock().unwrap();
    let (tx, rx) = channel();
    MonitorHub::install(tx, SimDur::from_secs(10));

    // A sim constructed while the hub is armed emits snapshots without
    // any direct attach_monitor call.
    let cfg = tiny_cfg(3);
    let label = format!("3j/1n {} Gang", PolicyConfig::full().label());
    agp_cluster::run(cfg.clone()).expect("hub-monitored run");
    MonitorHub::uninstall();

    let got: Vec<MetricsSnapshot> = drain(&rx)
        .into_iter()
        // Other tests' sims may share the armed hub; keep only ours.
        .filter(|s| s.label == label)
        .collect();
    assert!(!got.is_empty(), "hub-armed sim sent snapshots");
    assert!(got.last().unwrap().done, "final snapshot arrived");
    assert_eq!(got.last().unwrap().jobs_done, 3);

    // Detached: a sim constructed after uninstall sends nothing. The
    // hub's sender and the first run's clone are both gone, so once the
    // channel is drained it reports disconnection, not new snapshots.
    agp_cluster::run(cfg).expect("post-uninstall run");
    assert!(drain(&rx).is_empty(), "no snapshots after uninstall");
    assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);
}

#[test]
fn second_install_replaces_the_first_hook() {
    let _g = HUB_LOCK.lock().unwrap();
    let (tx1, rx1) = channel();
    let (tx2, rx2) = channel();
    MonitorHub::install(tx1, SimDur::from_secs(10));
    MonitorHub::install(tx2, SimDur::from_secs(10));

    let label = format!("2j/1n {} Gang", PolicyConfig::full().label());
    agp_cluster::run(tiny_cfg(2)).expect("run under replaced hook");
    MonitorHub::uninstall();

    // Replacing the hook dropped the first sender entirely: its channel
    // disconnects without ever delivering a snapshot.
    assert_eq!(rx1.try_recv().unwrap_err(), TryRecvError::Disconnected);
    let got: Vec<MetricsSnapshot> = drain(&rx2)
        .into_iter()
        .filter(|s| s.label == label)
        .collect();
    assert!(!got.is_empty(), "replacement hook received the snapshots");
    assert!(got.last().unwrap().done);
}
