//! JSON round-trip of [`RunResult`] — guards the serialized schema that
//! `report.json` goldens and archived traces depend on.
//!
//! Requires the real `serde_json`; the offline stub-build scratch drops
//! this file (see `.claude/skills/verify/SKILL.md`).

use agp_cluster::{
    ClusterConfig, ClusterSim, JobSpec, RunResult, ScheduleMode, RESULT_SCHEMA_VERSION,
};
use agp_core::PolicyConfig;
use agp_sim::SimDur;
use agp_workload::{Benchmark, Class, WorkloadSpec};

/// A small pressured run (same geometry as the sim unit tests) so the
/// result exercises every field: paging, switches, traces.
fn tiny_run() -> RunResult {
    let mut cfg = ClusterConfig::paper_defaults(1);
    cfg.mem_mib = 128;
    cfg.wired_mib = 64;
    cfg.quantum = SimDur::from_secs(10);
    cfg.policy = PolicyConfig::full();
    cfg.mode = ScheduleMode::Gang;
    cfg.trace_bucket = SimDur::from_secs(1);
    cfg.jobs = vec![
        JobSpec::new("LU.A #1", WorkloadSpec::serial(Benchmark::LU, Class::A)),
        JobSpec::new("LU.A #2", WorkloadSpec::serial(Benchmark::LU, Class::A)),
    ];
    ClusterSim::new(cfg).unwrap().run().unwrap()
}

#[test]
fn run_result_round_trips_through_json() {
    let r = tiny_run();
    assert_eq!(r.schema_version, RESULT_SCHEMA_VERSION);
    let json = serde_json::to_string(&r).unwrap();
    let back: RunResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.schema_version, r.schema_version);
    assert_eq!(back.seed, r.seed);
    assert_eq!(back.makespan, r.makespan);
    assert_eq!(back.switches, r.switches);
    assert_eq!(back.jobs.len(), r.jobs.len());
    assert_eq!(back.nodes.len(), r.nodes.len());
    assert_eq!(back.total_pages_in(), r.total_pages_in());
    assert_eq!(back.total_pages_out(), r.total_pages_out());
    // Lossless: re-serializing the deserialized value reproduces the
    // bytes exactly.
    let json2 = serde_json::to_string(&back).unwrap();
    assert_eq!(json, json2);
}

#[test]
fn missing_schema_version_reads_as_unversioned() {
    let r = tiny_run();
    let json = serde_json::to_string(&r).unwrap();
    let legacy = json.replace(&format!("\"schema_version\":{RESULT_SCHEMA_VERSION},"), "");
    assert_ne!(legacy, json, "the field must have been present");
    let back: RunResult = serde_json::from_str(&legacy).unwrap();
    assert_eq!(back.schema_version, 0, "pre-schema files default to 0");
}
