//! A minimal Rust token scanner.
//!
//! The workspace builds offline, so `agp-lint` cannot pull in `syn`; the
//! lints it implements only need a token stream with accurate line/column
//! positions, comment handling, and string-literal skipping, which this
//! hand-rolled scanner provides in ~300 lines. It understands:
//!
//! * line comments (`//`) and nested block comments (`/* /* */ */`),
//! * string, byte-string, raw-string (`r#"…"#`) and char literals,
//! * the char-literal vs lifetime ambiguity (`'a'` vs `'a`),
//! * numeric literals including floats (`1.5e3`, `0x_ff`),
//! * identifiers (including raw `r#ident`) and single-char punctuation.
//!
//! It also collects `// agp-lint: allow(<id>, …)` suppression comments so
//! the rule layer can silence a diagnostic on the same line or the line
//! directly below the comment.

/// Token classification. Punctuation is emitted one character at a time;
/// rules match multi-character operators (`::`) as adjacent `Punct` tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// String/char/numeric literal (contents not interpreted).
    Lit,
    /// Single punctuation character.
    Punct,
    /// Lifetime such as `'a` (kept distinct so rules can ignore it).
    Lifetime,
}

/// One token with its source position (1-based line and column) and its
/// byte offset into the source. The invariant pinned by the span
/// round-trip proptest: `src[offset..offset + text.len()] == text` for
/// every token, so AST spans assembled from token offsets always map back
/// to the exact source bytes.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
    pub offset: usize,
}

impl Tok {
    /// Byte offset one past the end of this token.
    pub fn end(&self) -> usize {
        self.offset + self.text.len()
    }
}

/// A suppression comment: the line it appears on plus the allowed lint ids.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub line: u32,
    pub ids: Vec<String>,
}

/// Output of [`lex`]: the token stream plus any suppression comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub suppressions: Vec<Suppression>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Parse the id list out of an `agp-lint: allow(a, b)` comment body.
/// Returns `None` when the comment is not a suppression directive.
fn parse_suppression(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("agp-lint:")?;
    let rest = comment[at + "agp-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let ids: Vec<String> = rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if ids.is_empty() {
        None
    } else {
        Some(ids)
    }
}

/// Tokenize `src`. Malformed input (unterminated literal, stray byte) is
/// handled leniently — the scanner never panics, it just keeps going — since
/// files that do not compile will be caught by `cargo` anyway.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        let offset = cur.pos;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                let text = &src[start..cur.pos];
                if let Some(ids) = parse_suppression(text) {
                    out.suppressions.push(Suppression { line, ids });
                }
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                let text = scan_string(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text,
                    line,
                    col,
                    offset,
                });
            }
            b'\'' => {
                let start = cur.pos;
                scan_quote(&mut cur, start, &mut out, line, col);
            }
            // Byte-char literal `b'x'` / `b'\n'`: one Lit token including
            // the prefix, not an `b` ident followed by a stray quote.
            b'b' if cur.peek_at(1) == Some(b'\'') => {
                let start = cur.pos;
                cur.bump(); // the `b` prefix
                scan_quote(&mut cur, start, &mut out, line, col);
            }
            _ if b.is_ascii_digit() => {
                let text = scan_number(&mut cur);
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text,
                    line,
                    col,
                    offset,
                });
            }
            _ if is_ident_start(b) => {
                // `r"…"` / `r#"…"#` raw strings, `b"…"`/`br"…"` byte strings,
                // and raw identifiers `r#name` all start like an identifier.
                if let Some(text) = try_scan_raw_or_byte_string(&mut cur) {
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        text,
                        line,
                        col,
                        offset,
                    });
                    continue;
                }
                let start = cur.pos;
                cur.bump();
                // Raw identifier prefix.
                if b == b'r'
                    && cur.peek() == Some(b'#')
                    && cur.peek_at(1).is_some_and(is_ident_start)
                {
                    cur.bump();
                }
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..cur.pos].to_string(),
                    line,
                    col,
                    offset,
                });
            }
            _ => {
                cur.bump();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                    offset,
                });
            }
        }
    }
    out
}

/// Scan a `"…"` string literal (cursor on the opening quote).
fn scan_string(cur: &mut Cursor) -> String {
    let start = cur.pos;
    cur.bump();
    while let Some(c) = cur.peek() {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => {
                cur.bump();
                break;
            }
            _ => {
                cur.bump();
            }
        }
    }
    String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned()
}

/// Scan a `'` token: either a char literal (`'a'`, `'\n'`, `'é'`) or a
/// lifetime (`'a`, `'static`). Rustc disambiguates the same way: if the
/// quote is followed by exactly one character and a closing quote, it is a
/// char literal, otherwise a lifetime. `start` is the byte offset of the
/// token (it precedes the quote for `b'x'` byte-char literals, whose `b`
/// prefix the caller has already consumed).
fn scan_quote(cur: &mut Cursor, start: usize, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // opening '
    let push = |cur: &Cursor, out: &mut Lexed, kind: TokKind| {
        out.toks.push(Tok {
            kind,
            text: String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned(),
            line,
            col,
            offset: start,
        });
    };
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal.
            cur.bump();
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            } else {
                // Multi-char escapes like '\x7f' or '\u{1F600}'.
                while let Some(c) = cur.peek() {
                    cur.bump();
                    if c == b'\'' {
                        break;
                    }
                }
            }
            push(cur, out, TokKind::Lit);
        }
        Some(c) if is_ident_start(c) => {
            // One full UTF-8 character followed by a closing quote means a
            // char literal; measuring a single *byte* here used to mislex
            // multibyte literals like 'é' as lifetimes.
            let char_len = utf8_len(c);
            if cur.peek_at(char_len) == Some(b'\'') {
                for _ in 0..=char_len {
                    cur.bump();
                }
                push(cur, out, TokKind::Lit);
            } else {
                // Lifetime: consume the identifier.
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                push(cur, out, TokKind::Lifetime);
            }
        }
        Some(_) => {
            // Something like '(' inside a char literal: ' X '.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            push(cur, out, TokKind::Lit);
        }
        None => {}
    }
}

/// Byte length of the UTF-8 character starting with lead byte `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Scan a numeric literal, including floats and exponents. Stops before a
/// `..` range operator so `0..10` lexes as `0`, `.`, `.`, `10`.
fn scan_number(cur: &mut Cursor) -> String {
    let start = cur.pos;
    while cur
        .peek()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
    {
        let c = cur.peek();
        cur.bump();
        // Exponent sign: 1e-3 / 1E+3.
        if matches!(c, Some(b'e') | Some(b'E'))
            && matches!(cur.peek(), Some(b'+') | Some(b'-'))
            && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
        {
            cur.bump();
        }
    }
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            let c = cur.peek();
            cur.bump();
            if matches!(c, Some(b'e') | Some(b'E'))
                && matches!(cur.peek(), Some(b'+') | Some(b'-'))
                && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
            {
                cur.bump();
            }
        }
    }
    String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned()
}

/// If the cursor sits on a raw/byte string prefix (`r"`, `r#"`, `b"`, `br"`,
/// `br#"`), consume the whole literal and return its text. Otherwise leave
/// the cursor untouched and return `None`.
fn try_scan_raw_or_byte_string(cur: &mut Cursor) -> Option<String> {
    let b0 = cur.peek()?;
    let (mut off, raw) = match b0 {
        b'r' => (1usize, true),
        b'b' => match cur.peek_at(1) {
            Some(b'"') => (1, false),
            Some(b'r') => (2, true),
            _ => return None,
        },
        _ => return None,
    };
    let mut hashes = 0usize;
    if raw {
        while cur.peek_at(off) == Some(b'#') {
            hashes += 1;
            off += 1;
        }
    }
    if cur.peek_at(off) != Some(b'"') {
        return None;
    }
    let start = cur.pos;
    for _ in 0..=off {
        cur.bump(); // prefix + opening quote
    }
    if raw {
        // Scan to `"` followed by `hashes` hash marks; no escapes in raw strings.
        'outer: while let Some(c) = cur.peek() {
            cur.bump();
            if c == b'"' {
                for i in 0..hashes {
                    if cur.peek_at(i) != Some(b'#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    } else {
        while let Some(c) = cur.peek() {
            match c {
                b'\\' => {
                    cur.bump();
                    cur.bump();
                }
                b'"' => {
                    cur.bump();
                    break;
                }
                _ => {
                    cur.bump();
                }
            }
        }
    }
    Some(String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_idents() {
        let src = r###"
            // HashMap in a comment
            /* Instant::now in /* nested */ block */
            let s = "HashMap::new()";
            let r = r#"SystemTime"#;
            let real = thing;
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"SystemTime".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .collect();
        assert_eq!(lits.len(), 2);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let lexed = lex("a\nb\n  c\n");
        let pos: Vec<(String, u32, u32)> = lexed
            .toks
            .iter()
            .map(|t| (t.text.clone(), t.line, t.col))
            .collect();
        assert_eq!(
            pos,
            vec![
                ("a".to_string(), 1, 1),
                ("b".to_string(), 2, 1),
                ("c".to_string(), 3, 3),
            ]
        );
    }

    #[test]
    fn suppressions_are_collected() {
        let src = "\nlet x = 1; // agp-lint: allow(panic-site): reason here\n\
                   // agp-lint: allow(hash-container, wall-clock)\nlet y = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 2);
        assert_eq!(lexed.suppressions[0].line, 2);
        assert_eq!(lexed.suppressions[0].ids, vec!["panic-site"]);
        assert_eq!(lexed.suppressions[1].line, 3);
        assert_eq!(
            lexed.suppressions[1].ids,
            vec!["hash-container", "wall-clock"]
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lexed = lex("for i in 0..10 { f(1.5e-3); }");
        let lits: Vec<String> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["0", "10", "1.5e-3"]);
    }

    #[test]
    fn byte_offsets_round_trip_for_every_token() {
        let src = "fn f<'a>(x: &'a str) -> Vec<Vec<u8>> {\n  let c = 'é'; let b = b'\\n';\n  r#\"raw \" text\"# ;\n}\n";
        for t in lex(src).toks {
            assert_eq!(
                &src[t.offset..t.end()],
                t.text,
                "token text must be the exact source slice at its offset"
            );
        }
    }

    #[test]
    fn nested_generic_closers_lex_as_adjacent_angles() {
        // `>>` must come out as two separate `>` puncts whose byte offsets
        // are adjacent — the parser glues shift operators back together by
        // offset adjacency, and splits generic closers apart by nesting.
        let lexed = lex("let v: Vec<Vec<u8>> = x >> 2;");
        let angles: Vec<&Tok> = lexed.toks.iter().filter(|t| t.text == ">").collect();
        assert_eq!(angles.len(), 4);
        assert_eq!(
            angles[0].end(),
            angles[1].offset,
            "generic closers adjacent"
        );
        assert_eq!(angles[2].end(), angles[3].offset, "shift halves adjacent");
        // And every token still reconstructs its source slice.
        let src = "let v: Vec<Vec<u8>> = x >> 2;";
        for t in lex(src).toks {
            assert_eq!(&src[t.offset..t.end()], t.text);
        }
    }

    #[test]
    fn multibyte_char_literal_is_not_a_lifetime() {
        let lexed = lex("let c = 'é'; let d = '中'; fn f<'a>(x: &'a u8) {}");
        let lits: Vec<String> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["'é'", "'中'"]);
        let lifetimes: Vec<String> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
    }

    #[test]
    fn byte_char_literal_is_one_token() {
        let lexed = lex("let q = b'x'; let n = b'\\n'; let v = by;");
        let lits: Vec<String> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lit)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lits, vec!["b'x'", "b'\\n'"]);
        // A `b`-prefixed identifier is still an identifier.
        assert!(lexed.toks.iter().any(|t| t.text == "by"));
        assert!(!lexed.toks.iter().any(|t| t.text == "b"));
    }

    #[test]
    fn raw_strings_keep_line_numbers_and_offsets() {
        let src = "let s = r##\"line one\nline \"# two\"##;\nlet after = 1;\n";
        let lexed = lex(src);
        let raw = lexed
            .toks
            .iter()
            .find(|t| t.text.starts_with("r##"))
            .expect("raw string token");
        assert_eq!(&src[raw.offset..raw.end()], raw.text);
        let after = lexed.toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3, "newline inside the raw string counted");
        // Byte raw strings with hashes lex as one literal too.
        let lexed2 = lex("let b = br#\"bytes \" here\"#; let t = u;");
        assert!(lexed2.toks.iter().any(|t| t.text.starts_with("br#")));
        assert!(lexed2.toks.iter().any(|t| t.text == "u"));
        assert!(!lexed2.toks.iter().any(|t| t.text == "bytes"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let lexed = lex(r####"let s = r##"quote " and "# inside"##; let t = u;"####);
        let ids = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect::<Vec<_>>();
        assert!(ids.contains(&"t".to_string()));
        assert!(ids.contains(&"u".to_string()));
        assert!(!ids.iter().any(|i| i == "quote" || i == "inside"));
    }
}
