//! Per-crate lint configuration from `Cargo.toml` metadata.
//!
//! A crate can opt whole lint classes out via a metadata block:
//!
//! ```toml
//! [package.metadata.agp-lint]
//! allow = ["wall-clock", "panic-site"]
//! ```
//!
//! Only this tiny subset of TOML is needed, so the parser is hand-rolled:
//! it finds the `[package.metadata.agp-lint]` table and reads the `allow`
//! string array (single- or multi-line). Everything else in the manifest is
//! ignored.

/// Parsed lint config for one crate.
#[derive(Clone, Debug, Default)]
pub struct CrateConfig {
    /// Package name from `[package] name = "…"` (empty if not found).
    pub name: String,
    /// Lint ids allowed (silenced) crate-wide.
    pub allow: Vec<String>,
}

/// Extract the string after `name = "` on a line, if present.
fn string_value(line: &str, key: &str) -> Option<String> {
    let rest = line.trim().strip_prefix(key)?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Parse `manifest` (the contents of a `Cargo.toml`) into a [`CrateConfig`].
pub fn parse_manifest(manifest: &str) -> CrateConfig {
    let mut cfg = CrateConfig::default();
    let mut section = String::new();
    let mut in_allow_array = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if in_allow_array {
            // Continuation of a multi-line `allow = [` array.
            for part in line.split(',') {
                let part = part.trim().trim_end_matches(']').trim();
                if let Some(id) = part.strip_prefix('"').and_then(|p| p.strip_suffix('"')) {
                    cfg.allow.push(id.to_string());
                }
            }
            if line.contains(']') {
                in_allow_array = false;
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            if let Some(end) = rest.find(']') {
                section = rest[..end].to_string();
            }
            continue;
        }
        match section.as_str() {
            "package" if cfg.name.is_empty() => {
                if let Some(v) = string_value(line, "name") {
                    cfg.name = v;
                }
            }
            "package.metadata.agp-lint" => {
                if let Some(rest) = line.strip_prefix("allow") {
                    let rest = rest.trim_start();
                    if let Some(arr) = rest.strip_prefix('=') {
                        let arr = arr.trim();
                        if let Some(body) = arr.strip_prefix('[') {
                            if let Some(end) = body.find(']') {
                                for part in body[..end].split(',') {
                                    let part = part.trim();
                                    if let Some(id) =
                                        part.strip_prefix('"').and_then(|p| p.strip_suffix('"'))
                                    {
                                        cfg.allow.push(id.to_string());
                                    }
                                }
                            } else {
                                // Array continues on following lines.
                                for part in body.split(',') {
                                    let part = part.trim();
                                    if let Some(id) =
                                        part.strip_prefix('"').and_then(|p| p.strip_suffix('"'))
                                    {
                                        cfg.allow.push(id.to_string());
                                    }
                                }
                                in_allow_array = true;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_and_single_line_allow() {
        let cfg = parse_manifest(
            "[package]\nname = \"agp-cli\"\nversion = \"0.1.0\"\n\n\
             [package.metadata.agp-lint]\nallow = [\"wall-clock\", \"panic-site\"]\n",
        );
        assert_eq!(cfg.name, "agp-cli");
        assert_eq!(cfg.allow, vec!["wall-clock", "panic-site"]);
    }

    #[test]
    fn parses_multi_line_allow() {
        let cfg = parse_manifest(
            "[package]\nname = \"x\"\n[package.metadata.agp-lint]\nallow = [\n    \
             \"hash-container\",\n    \"wall-clock\",\n]\n[dependencies]\n",
        );
        assert_eq!(cfg.allow, vec!["hash-container", "wall-clock"]);
    }

    #[test]
    fn no_metadata_block_means_no_allows() {
        let cfg = parse_manifest("[package]\nname = \"agp-mem\"\n[dependencies]\nserde = \"1\"\n");
        assert_eq!(cfg.name, "agp-mem");
        assert!(cfg.allow.is_empty());
    }

    #[test]
    fn dependency_named_name_is_not_package_name() {
        let cfg = parse_manifest("[dependencies]\nname = \"oops\"\n[package]\nname = \"real\"\n");
        assert_eq!(cfg.name, "real");
    }
}
