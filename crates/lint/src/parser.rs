//! Tolerant recursive-descent parser over [`crate::lexer`] tokens.
//!
//! Produces the lightweight [`crate::ast`]: enough structure for the
//! semantic rules (types on lets/params/fields, expression trees with
//! method calls, binary operators, loops and struct literals), while
//! skipping what they do not need (full patterns, lifetimes, bounds).
//!
//! The parser never panics and never rejects a file: constructs it does
//! not model are consumed with balanced delimiters and surface as
//! `Unknown` nodes. Anything genuinely malformed (an unclosed delimiter,
//! a token it cannot make progress past) is recorded as a [`ParseIssue`]
//! — the workspace gate asserts that real sources parse with zero issues.
//!
//! ## Operator gluing
//!
//! The lexer emits every punctuation byte as its own token. Multi-char
//! operators (`::`, `->`, `==`, `+=`, `>>`, …) are reassembled here by
//! byte-offset adjacency ([`Tok::end`] of one piece == `offset` of the
//! next). Crucially this is done only where the grammar wants an
//! *operator*: in type position `Vec<Vec<u8>>` still closes with two
//! separate `>` tokens, while in expression position `x >> 2` glues into
//! a single shift.

use crate::ast::*;
use crate::lexer::{Tok, TokKind};

/// A point where the parser lost the plot. Real sources must produce none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIssue {
    pub line: u32,
    pub col: u32,
    pub msg: String,
}

/// Parse a token stream into a [`File`], collecting issues on the side.
pub fn parse(toks: &[Tok]) -> (File, Vec<ParseIssue>) {
    let mut p = Parser {
        toks,
        pos: 0,
        issues: Vec::new(),
        fuel: toks.len().saturating_mul(16).max(4096),
    };
    let mut items = Vec::new();
    while !p.done() {
        let before = p.pos;
        if let Some(item) = p.parse_item() {
            items.push(item);
        }
        if p.pos == before {
            p.issue("no progress at top level");
            p.bump();
        }
    }
    (File { items }, p.issues)
}

/// Multi-char operators, longest first so gluing is greedy.
const OPS: [&str; 25] = [
    "<<=", ">>=", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..", ".", "=",
];

/// Binary operator binding powers (left associative).
fn bin_bp(op: &str) -> Option<u8> {
    Some(match op {
        ".." | "..=" => 4,
        "||" => 6,
        "&&" => 8,
        "==" | "!=" | "<" | ">" | "<=" | ">=" => 10,
        "|" => 12,
        "^" => 14,
        "&" => 16,
        "<<" | ">>" => 18,
        "+" | "-" => 20,
        "*" | "/" | "%" => 22,
        _ => return None,
    })
}

fn is_assign_op(op: &str) -> bool {
    matches!(
        op,
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
    )
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    issues: Vec<ParseIssue>,
    /// Hard bound on total parsing work: a defensive backstop so that no
    /// input — however malformed — can loop the linter forever.
    fuel: usize,
}

impl<'a> Parser<'a> {
    // ------------------------------------------------------------------
    // Token-level helpers
    // ------------------------------------------------------------------

    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn tok(&self, i: usize) -> Option<&'a Tok> {
        self.toks.get(i)
    }

    fn cur(&self) -> Option<&'a Tok> {
        self.tok(self.pos)
    }

    fn bump(&mut self) {
        self.pos += 1;
        self.fuel = self.fuel.saturating_sub(1);
    }

    fn out_of_fuel(&mut self) -> bool {
        if self.fuel == 0 {
            let already = self
                .issues
                .last()
                .is_some_and(|i| i.msg == "parser fuel exhausted");
            if !already {
                self.issue("parser fuel exhausted");
            }
            self.pos = self.toks.len();
            true
        } else {
            false
        }
    }

    fn issue(&mut self, msg: &str) {
        let (line, col) = self
            .cur()
            .or(self.toks.last())
            .map(|t| (t.line, t.col))
            .unwrap_or((0, 0));
        if self.issues.len() < 64 {
            self.issues.push(ParseIssue {
                line,
                col,
                msg: msg.to_string(),
            });
        }
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        self.tok(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
    }

    fn at_punct(&self, p: &str) -> bool {
        self.is_punct(self.pos, p)
    }

    fn at_ident(&self, name: &str) -> bool {
        self.cur()
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident_text(&self) -> Option<&'a str> {
        self.cur()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
    }

    /// Take the identifier at the cursor, if any.
    fn take_ident(&mut self) -> Option<String> {
        let t = self.cur()?;
        if t.kind == TokKind::Ident {
            self.bump();
            Some(t.text.clone())
        } else {
            None
        }
    }

    fn sp(&self, i: usize) -> Span {
        match self.tok(i).or(self.toks.last()) {
            Some(t) => Span {
                lo: t.offset,
                hi: t.end(),
                line: t.line,
                col: t.col,
            },
            None => Span::DUMMY,
        }
    }

    /// Span from token index `start` through the last consumed token.
    fn span_from(&self, start: usize) -> Span {
        let lo = self.sp(start);
        if self.pos == 0 || self.pos <= start {
            return lo;
        }
        let hi = self.sp(self.pos - 1);
        Span {
            lo: lo.lo,
            hi: hi.hi.max(lo.hi),
            line: lo.line,
            col: lo.col,
        }
    }

    /// The longest multi-char operator starting at `i`, glued from
    /// byte-adjacent punct tokens. Returns `(text, token_count)`.
    fn op_at(&self, i: usize) -> Option<(&'static str, usize)> {
        let first = self.tok(i)?;
        if first.kind != TokKind::Punct {
            return None;
        }
        'op: for op in OPS {
            let chars: Vec<char> = op.chars().collect();
            if chars[0].to_string() != first.text {
                continue;
            }
            let mut prev_end = first.end();
            for (k, c) in chars.iter().enumerate().skip(1) {
                match self.tok(i + k) {
                    Some(t)
                        if t.kind == TokKind::Punct
                            && t.text == c.to_string()
                            && t.offset == prev_end =>
                    {
                        prev_end = t.end();
                    }
                    _ => continue 'op,
                }
            }
            return Some((op, chars.len()));
        }
        None
    }

    /// True when the glued operator starting at `i` is NOT `op` (including
    /// when no multi-char operator starts there) — used to keep `=`/`:`/`!`
    /// from being confused with the longer `==`/`::`/`!=`.
    fn op_at_is_not(&self, i: usize, op: &str) -> bool {
        // MSRV 1.75: `Option::is_none_or` is not available yet.
        match self.op_at(i) {
            Some((o, _)) => o != op,
            None => true,
        }
    }

    /// Like [`op_at`] at the cursor, restricted to ops usable as binary /
    /// assignment operators (single-char puncts included).
    fn binop_at_cursor(&self) -> Option<(String, usize)> {
        if let Some((op, n)) = self.op_at(self.pos) {
            if op == "::" || op == "->" || op == "=>" || op == "." {
                return None;
            }
            return Some((op.to_string(), n));
        }
        let t = self.cur()?;
        if t.kind == TokKind::Punct
            && matches!(
                t.text.as_str(),
                "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|" | "<" | ">" | "="
            )
        {
            return Some((t.text.clone(), 1));
        }
        None
    }

    /// Consume a balanced `(...)`, `[...]` or `{...}` group (cursor on the
    /// opener). Records an issue if the stream ends first.
    fn skip_group(&mut self) {
        let open = match self.cur() {
            Some(t) if t.kind == TokKind::Punct => t.text.clone(),
            _ => return,
        };
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return,
        };
        let mut depth = 0usize;
        while let Some(t) = self.cur() {
            if self.out_of_fuel() {
                return;
            }
            if t.kind == TokKind::Punct {
                if t.text == open {
                    depth += 1;
                } else if t.text == close {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
            }
            self.bump();
        }
        self.issue(&format!("unclosed `{open}`"));
    }

    /// Skip `#[...]` / `#![...]` attributes at the cursor.
    fn skip_attrs(&mut self) {
        while self.at_punct("#") {
            let save = self.pos;
            self.bump();
            self.eat_punct("!");
            if self.at_punct("[") {
                self.skip_group();
            } else {
                self.pos = save;
                return;
            }
        }
    }

    /// Skip a `<...>` generic parameter list (cursor on `<`). Angle depth
    /// counting ignores the `>` of glued `->` / `=>` arrows and skips
    /// brace/paren groups wholesale (const generic defaults, Fn sugar).
    fn skip_generics(&mut self) {
        if !self.at_punct("<") {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            if self.out_of_fuel() {
                return;
            }
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => {
                        let arrow = self.tok(self.pos.wrapping_sub(1)).is_some_and(|p| {
                            p.kind == TokKind::Punct
                                && (p.text == "-" || p.text == "=")
                                && p.end() == t.offset
                        });
                        if !arrow {
                            depth -= 1;
                            if depth == 0 {
                                self.bump();
                                return;
                            }
                        }
                    }
                    "(" | "[" | "{" => {
                        self.skip_group();
                        continue;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
        self.issue("unclosed `<` in generics");
    }

    /// Skip a `where` clause: everything up to the `{` or `;` that starts
    /// the item body, at angle/paren depth zero.
    fn skip_where(&mut self) {
        if !self.at_ident("where") {
            return;
        }
        self.bump();
        let mut angle = 0i32;
        while let Some(t) = self.cur() {
            if self.out_of_fuel() {
                return;
            }
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        let arrow = self.tok(self.pos.wrapping_sub(1)).is_some_and(|p| {
                            p.kind == TokKind::Punct
                                && (p.text == "-" || p.text == "=")
                                && p.end() == t.offset
                        });
                        if !arrow {
                            angle -= 1;
                        }
                    }
                    "(" | "[" => {
                        self.skip_group();
                        continue;
                    }
                    "{" | ";" if angle <= 0 => return,
                    _ => {}
                }
            }
            self.bump();
        }
    }

    // ------------------------------------------------------------------
    // Items
    // ------------------------------------------------------------------

    fn parse_item(&mut self) -> Option<Item> {
        self.skip_attrs();
        if self.done() || self.out_of_fuel() {
            return None;
        }
        let start = self.pos;
        // Visibility.
        if self.eat_ident("pub") && self.at_punct("(") {
            self.skip_group();
        }
        // Leading qualifiers that do not change the item kind.
        loop {
            if self.at_ident("unsafe") || self.at_ident("async") || self.at_ident("default") {
                self.bump();
                continue;
            }
            if self.at_ident("extern") {
                self.bump();
                // `extern "C"` (fn qualifier) or `extern crate x;` or block.
                if self.cur().is_some_and(|t| t.kind == TokKind::Lit) {
                    self.bump();
                }
                if self.at_ident("crate") {
                    // extern crate foo;  — consume through `;`.
                    while let Some(t) = self.cur() {
                        let done = t.kind == TokKind::Punct && t.text == ";";
                        self.bump();
                        if done {
                            break;
                        }
                    }
                    return Some(Item {
                        kind: ItemKind::Other,
                        span: self.span_from(start),
                        tok: start,
                    });
                }
                if self.at_punct("{") {
                    self.skip_group();
                    return Some(Item {
                        kind: ItemKind::Other,
                        span: self.span_from(start),
                        tok: start,
                    });
                }
                continue;
            }
            break;
        }

        let kw = self.ident_text().unwrap_or("");
        let kind = match kw {
            "use" => self.parse_use(),
            "type" => self.parse_type_alias(),
            "struct" | "union" => self.parse_struct(),
            "enum" => self.parse_enum(),
            "static" => self.parse_static(),
            "const" => {
                // `const fn name` vs `const NAME: T` vs `const _: T`.
                if self.tok(self.pos + 1).is_some_and(|t| t.text == "fn") {
                    self.bump();
                    self.parse_fn()
                } else {
                    self.parse_const()
                }
            }
            "fn" => self.parse_fn(),
            "impl" => self.parse_impl(),
            "trait" => self.parse_trait(),
            "mod" => self.parse_mod(),
            "macro_rules" => {
                self.bump();
                self.eat_punct("!");
                let name = self.take_ident().unwrap_or_default();
                if self.at_punct("{") || self.at_punct("(") || self.at_punct("[") {
                    self.skip_group();
                }
                self.eat_punct(";");
                ItemKind::MacroInvoke {
                    path: vec!["macro_rules".into(), name],
                }
            }
            _ => {
                // `name! { … }` item-position macro invocation.
                if !kw.is_empty() {
                    let save = self.pos;
                    let mut path = Vec::new();
                    while let Some(seg) = self.take_ident() {
                        path.push(seg);
                        if self.op_at(self.pos).is_some_and(|(op, _)| op == "::") {
                            self.bump();
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if self.eat_punct("!") {
                        if self.at_punct("{") || self.at_punct("(") || self.at_punct("[") {
                            self.skip_group();
                        }
                        self.eat_punct(";");
                        return Some(Item {
                            kind: ItemKind::MacroInvoke { path },
                            span: self.span_from(start),
                            tok: start,
                        });
                    }
                    self.pos = save;
                }
                self.recover_item()
            }
        };
        Some(Item {
            kind,
            span: self.span_from(start),
            tok: start,
        })
    }

    /// Unknown item: consume to a depth-0 `;` or through one balanced brace
    /// block, whichever comes first.
    fn recover_item(&mut self) -> ItemKind {
        while let Some(t) = self.cur() {
            if self.out_of_fuel() {
                return ItemKind::Other;
            }
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    ";" => {
                        self.bump();
                        return ItemKind::Other;
                    }
                    "{" | "(" | "[" => {
                        let brace = t.text == "{";
                        self.skip_group();
                        if brace {
                            return ItemKind::Other;
                        }
                        continue;
                    }
                    "}" => return ItemKind::Other,
                    _ => {}
                }
            }
            self.bump();
        }
        ItemKind::Other
    }

    fn parse_use(&mut self) -> ItemKind {
        self.bump(); // `use`
        let mut leaves = Vec::new();
        self.parse_use_tree(Vec::new(), &mut leaves);
        self.eat_punct(";");
        ItemKind::Use(leaves)
    }

    fn parse_use_tree(&mut self, prefix: Vec<String>, out: &mut Vec<Vec<String>>) {
        let mut path = prefix;
        loop {
            if self.out_of_fuel() {
                return;
            }
            if self.at_punct("{") {
                self.bump();
                loop {
                    if self.at_punct("}") || self.done() {
                        self.bump();
                        break;
                    }
                    self.parse_use_tree(path.clone(), out);
                    if !self.eat_punct(",") && !self.at_punct("}") {
                        // Lost sync inside the group: bail out of it.
                        while !self.done() && !self.eat_punct("}") {
                            self.bump();
                        }
                        break;
                    }
                }
                return;
            }
            if self.at_punct("*") {
                self.bump();
                path.push("*".into());
                out.push(path);
                return;
            }
            match self.take_ident() {
                Some(seg) => {
                    if seg == "as" {
                        // alias rename: `x as y` — record the original path.
                        self.take_ident();
                        out.push(path);
                        return;
                    }
                    path.push(seg);
                }
                None => {
                    if !path.is_empty() {
                        out.push(path);
                    }
                    return;
                }
            }
            if self.op_at(self.pos).is_some_and(|(op, _)| op == "::") {
                self.bump();
                self.bump();
                continue;
            }
            // `as` rename after a path.
            if self.at_ident("as") {
                self.bump();
                self.take_ident();
            }
            out.push(path);
            return;
        }
    }

    fn parse_type_alias(&mut self) -> ItemKind {
        self.bump(); // `type`
        let name = self.take_ident().unwrap_or_default();
        self.skip_generics();
        if !self.eat_punct("=") {
            // Associated type declaration (`type X;` / `type X: Bound;`).
            while !self.done() && !self.eat_punct(";") {
                self.bump();
            }
            return ItemKind::Other;
        }
        let ty = self.parse_type();
        self.eat_punct(";");
        ItemKind::TypeAlias { name, ty }
    }

    fn parse_struct(&mut self) -> ItemKind {
        self.bump(); // `struct` / `union`
        let name = self.take_ident().unwrap_or_default();
        self.skip_generics();
        self.skip_where();
        let mut fields = Vec::new();
        if self.at_punct("{") {
            self.bump();
            loop {
                self.skip_attrs();
                if self.eat_punct("}") || self.done() {
                    break;
                }
                if self.eat_ident("pub") && self.at_punct("(") {
                    self.skip_group();
                }
                let Some(fname) = self.take_ident() else {
                    self.issue("expected struct field name");
                    while !self.done() && !self.eat_punct("}") {
                        self.bump();
                    }
                    break;
                };
                if !self.eat_punct(":") {
                    self.issue("expected `:` after field name");
                }
                let ty = self.parse_type();
                fields.push((fname, ty));
                self.eat_punct(",");
            }
        } else if self.at_punct("(") {
            self.bump();
            let mut idx = 0usize;
            loop {
                self.skip_attrs();
                if self.eat_punct(")") || self.done() {
                    break;
                }
                if self.eat_ident("pub") && self.at_punct("(") {
                    self.skip_group();
                }
                let ty = self.parse_type();
                fields.push((idx.to_string(), ty));
                idx += 1;
                self.eat_punct(",");
            }
            self.skip_where();
            self.eat_punct(";");
        } else {
            self.eat_punct(";"); // unit struct
        }
        ItemKind::Struct { name, fields }
    }

    fn parse_enum(&mut self) -> ItemKind {
        self.bump(); // `enum`
        let name = self.take_ident().unwrap_or_default();
        self.skip_generics();
        self.skip_where();
        let mut variants = Vec::new();
        if self.at_punct("{") {
            self.bump();
            loop {
                self.skip_attrs();
                if self.eat_punct("}") || self.done() {
                    break;
                }
                let vtok = self.pos;
                let Some(vname) = self.take_ident() else {
                    self.issue("expected enum variant");
                    while !self.done() && !self.eat_punct("}") {
                        self.bump();
                    }
                    break;
                };
                if self.at_punct("{") || self.at_punct("(") {
                    self.skip_group();
                }
                if self.eat_punct("=") {
                    // Discriminant expression, to the next depth-0 comma.
                    while let Some(t) = self.cur() {
                        if t.kind == TokKind::Punct {
                            match t.text.as_str() {
                                "," | "}" => break,
                                "(" | "[" | "{" => {
                                    self.skip_group();
                                    continue;
                                }
                                _ => {}
                            }
                        }
                        self.bump();
                    }
                }
                variants.push(Variant {
                    name: vname,
                    span: self.span_from(vtok),
                    tok: vtok,
                });
                self.eat_punct(",");
            }
        } else {
            self.eat_punct(";");
        }
        ItemKind::Enum { name, variants }
    }

    fn parse_static(&mut self) -> ItemKind {
        self.bump(); // `static`
        let mutable = self.eat_ident("mut");
        let name = self.take_ident().unwrap_or_default();
        let ty = if self.eat_punct(":") {
            Some(self.parse_type())
        } else {
            None
        };
        if self.eat_punct("=") {
            self.parse_expr(false);
        }
        self.eat_punct(";");
        ItemKind::Static { name, mutable, ty }
    }

    fn parse_const(&mut self) -> ItemKind {
        self.bump(); // `const`
        let name = self.take_ident().unwrap_or_default();
        if self.eat_punct(":") {
            self.parse_type();
        }
        if self.eat_punct("=") {
            self.parse_expr(false);
        }
        self.eat_punct(";");
        ItemKind::Const { name }
    }

    fn parse_fn(&mut self) -> ItemKind {
        let start = self.pos;
        self.bump(); // `fn`
        let name = self.take_ident().unwrap_or_default();
        self.skip_generics();
        let mut params = Vec::new();
        if self.eat_punct("(") {
            loop {
                self.skip_attrs();
                if self.eat_punct(")") || self.done() {
                    break;
                }
                if let Some(param) = self.parse_param() {
                    params.push(param);
                }
                if !self.eat_punct(",") && !self.at_punct(")") {
                    self.issue("expected `,` or `)` in params");
                    while !self.done() && !self.eat_punct(")") {
                        if self.at_punct("(") || self.at_punct("[") || self.at_punct("{") {
                            self.skip_group();
                        } else {
                            self.bump();
                        }
                    }
                    break;
                }
            }
        }
        let ret = if self.op_at(self.pos).is_some_and(|(op, _)| op == "->") {
            self.bump();
            self.bump();
            Some(self.parse_type())
        } else {
            None
        };
        self.skip_where();
        let body = if self.at_punct("{") {
            Some(self.parse_block())
        } else {
            self.eat_punct(";");
            None
        };
        ItemKind::Fn(FnDef {
            name,
            params,
            ret,
            body,
            span: self.span_from(start),
            tok: start,
        })
    }

    /// One function parameter; `self` receivers keep the name `self` and
    /// no type (the semantic pass substitutes the impl target).
    fn parse_param(&mut self) -> Option<Param> {
        // Receiver forms: self / mut self / &self / &mut self / &'a self.
        let save = self.pos;
        if self.at_punct("&") {
            self.bump();
            if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime) {
                self.bump();
            }
            self.eat_ident("mut");
            if self.eat_ident("self") {
                return Some(Param {
                    name: "self".into(),
                    ty: None,
                });
            }
            self.pos = save;
        }
        {
            let save2 = self.pos;
            self.eat_ident("mut");
            if self.eat_ident("self") {
                let ty = if self.eat_punct(":") {
                    Some(self.parse_type())
                } else {
                    None
                };
                return Some(Param {
                    name: "self".into(),
                    ty,
                });
            }
            self.pos = save2;
        }
        // General pattern: find the first binding ident, then `: Type`.
        let name = self.parse_pattern_binding();
        let ty = if self.eat_punct(":") {
            Some(self.parse_type())
        } else {
            None
        };
        Some(Param {
            name: name.unwrap_or_else(|| "_".into()),
            ty,
        })
    }

    /// Consume a pattern up to (not including) a depth-0 `:`, `=`, `,`,
    /// `)`, `in`, or `;`, returning its first binding identifier.
    ///
    /// Constructor names (`Some(x)`, `Event::Fault { page }`) are skipped
    /// — an identifier followed by `::`, `(`, `{`, or `!` names a path,
    /// not a binding. Struct-pattern field names (`Point { x: a }`) may be
    /// picked over the bound alias; the rules only need simple bindings.
    fn parse_pattern_binding(&mut self) -> Option<String> {
        let mut first: Option<String> = None;
        let mut depth = 0i32;
        while let Some(t) = self.cur() {
            if self.out_of_fuel() {
                return first;
            }
            match t.kind {
                TokKind::Punct => match t.text.as_str() {
                    "(" | "[" | "{" => {
                        depth += 1;
                        self.bump();
                    }
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            return first;
                        }
                        depth -= 1;
                        self.bump();
                    }
                    ":" if depth == 0 => {
                        // `::` inside a path pattern is not the type colon.
                        if self.op_at(self.pos).is_some_and(|(op, _)| op == "::") {
                            self.bump();
                            self.bump();
                        } else {
                            return first;
                        }
                    }
                    // `|` closes a closure-parameter pattern; or-patterns
                    // in `let`/`for` position require parens, so depth 0
                    // is unambiguous.
                    "=" | ";" | "," | "|" if depth == 0 => return first,
                    _ => self.bump(),
                },
                TokKind::Ident => {
                    if depth == 0 && t.text == "in" {
                        return first;
                    }
                    let excluded = matches!(
                        t.text.as_str(),
                        "mut"
                            | "ref"
                            | "box"
                            | "Some"
                            | "Ok"
                            | "Err"
                            | "None"
                            | "_"
                            | "true"
                            | "false"
                    );
                    let is_path_head = self.op_at(self.pos + 1).is_some_and(|(op, _)| op == "::")
                        || self.is_punct(self.pos + 1, "(")
                        || self.is_punct(self.pos + 1, "{")
                        || self.is_punct(self.pos + 1, "!");
                    if first.is_none() && !excluded && !is_path_head {
                        first = Some(t.text.clone());
                    }
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        first
    }

    fn parse_impl(&mut self) -> ItemKind {
        self.bump(); // `impl`
        self.skip_generics();
        self.eat_punct("!");
        let first = self.parse_type();
        let (trait_, target) = if self.eat_ident("for") {
            let tgt = self.parse_type();
            (
                first.head().map(str::to_string),
                tgt.head().map(str::to_string),
            )
        } else {
            (None, first.head().map(str::to_string))
        };
        self.skip_where();
        let items = self.parse_brace_items();
        ItemKind::Impl {
            target,
            trait_,
            items,
        }
    }

    fn parse_trait(&mut self) -> ItemKind {
        self.bump(); // `trait`
        let name = self.take_ident().unwrap_or_default();
        self.skip_generics();
        if self.eat_punct(":") {
            // Supertrait bounds, up to `{` or `where`.
            while let Some(t) = self.cur() {
                if t.kind == TokKind::Punct && t.text == "{" {
                    break;
                }
                if t.kind == TokKind::Ident && t.text == "where" {
                    break;
                }
                if t.kind == TokKind::Punct && (t.text == "(" || t.text == "[") {
                    self.skip_group();
                    continue;
                }
                self.bump();
            }
        }
        self.skip_where();
        let items = self.parse_brace_items();
        ItemKind::Trait { name, items }
    }

    fn parse_mod(&mut self) -> ItemKind {
        self.bump(); // `mod`
        let name = self.take_ident().unwrap_or_default();
        if self.eat_punct(";") {
            return ItemKind::Mod { name, items: None };
        }
        let items = self.parse_brace_items();
        ItemKind::Mod {
            name,
            items: Some(items),
        }
    }

    /// `{ item* }` — impl / trait / mod bodies.
    fn parse_brace_items(&mut self) -> Vec<Item> {
        let mut items = Vec::new();
        if !self.eat_punct("{") {
            self.issue("expected `{`");
            return items;
        }
        while !self.done() && !self.at_punct("}") {
            if self.out_of_fuel() {
                return items;
            }
            let before = self.pos;
            if let Some(item) = self.parse_item() {
                items.push(item);
            }
            if self.pos == before {
                self.issue("no progress in item block");
                self.bump();
            }
        }
        if !self.eat_punct("}") {
            self.issue("unclosed item block");
        }
        items
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn parse_type(&mut self) -> Type {
        let start = self.pos;
        if self.out_of_fuel() {
            return Type::unknown(self.span_from(start));
        }
        // `&` / `&&` references.
        if self.at_punct("&") {
            self.bump();
            // Second `&` of a glued `&&` double reference.
            if self.at_punct("&") {
                self.bump();
            }
            if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime) {
                self.bump();
            }
            let mutable = self.eat_ident("mut");
            let inner = self.parse_type();
            return Type {
                kind: TypeKind::Ref {
                    mutable,
                    inner: Box::new(inner),
                },
                span: self.span_from(start),
            };
        }
        // Raw pointers.
        if self.at_punct("*") {
            self.bump();
            let _ = self.eat_ident("const") || self.eat_ident("mut");
            let _ = self.parse_type();
            return Type::unknown(self.span_from(start));
        }
        if self.at_punct("(") {
            self.bump();
            let mut elems = Vec::new();
            let mut trailing_comma = false;
            while !self.done() && !self.at_punct(")") {
                elems.push(self.parse_type());
                trailing_comma = self.eat_punct(",");
                if !trailing_comma && !self.at_punct(")") {
                    self.issue("expected `,` or `)` in tuple type");
                    break;
                }
            }
            self.eat_punct(")");
            let span = self.span_from(start);
            if elems.len() == 1 && !trailing_comma {
                return elems.pop().unwrap();
            }
            return Type {
                kind: TypeKind::Tuple(elems),
                span,
            };
        }
        if self.at_punct("[") {
            self.bump();
            let inner = self.parse_type();
            if self.eat_punct(";") {
                // Array length: consume to the closing `]`.
                while let Some(t) = self.cur() {
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "]" => break,
                            "(" | "[" | "{" => {
                                self.skip_group();
                                continue;
                            }
                            _ => {}
                        }
                    }
                    self.bump();
                }
            }
            self.eat_punct("]");
            return Type {
                kind: TypeKind::Slice(Box::new(inner)),
                span: self.span_from(start),
            };
        }
        // Qualified path `<T as Trait>::Assoc`.
        if self.at_punct("<") {
            self.skip_generics();
            let mut segs = Vec::new();
            while self.op_at(self.pos).is_some_and(|(op, _)| op == "::") {
                self.bump();
                self.bump();
                if let Some(seg) = self.take_ident() {
                    segs.push(seg);
                }
            }
            return Type {
                kind: TypeKind::Path {
                    segs,
                    args: Vec::new(),
                },
                span: self.span_from(start),
            };
        }
        // `dyn` / `impl` bound lists: parse the first bound as the type.
        if self.at_ident("dyn") || self.at_ident("impl") {
            self.bump();
            let first = self.parse_type();
            while self.at_punct("+") {
                self.bump();
                if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.bump();
                } else {
                    let _ = self.parse_type();
                }
            }
            return Type {
                kind: first.kind,
                span: self.span_from(start),
            };
        }
        if self.at_ident("fn") {
            // fn-pointer type: fn(args) -> ret.
            self.bump();
            if self.at_punct("(") {
                self.skip_group();
            }
            if self.op_at(self.pos).is_some_and(|(op, _)| op == "->") {
                self.bump();
                self.bump();
                let _ = self.parse_type();
            }
            return Type::unknown(self.span_from(start));
        }
        if self.at_punct("!") {
            self.bump();
            return Type::unknown(self.span_from(start));
        }
        if self.at_ident("_") {
            self.bump();
            return Type::unknown(self.span_from(start));
        }
        // Plain path type.
        let mut segs = Vec::new();
        let mut args = Vec::new();
        loop {
            match self.take_ident() {
                Some(seg) => segs.push(seg),
                None => {
                    if segs.is_empty() {
                        // Not a type at all; bail without consuming.
                        return Type::unknown(self.span_from(start));
                    }
                    break;
                }
            }
            // Parenthesized Fn-trait sugar: `Fn(A) -> B`.
            if self.at_punct("(") {
                self.skip_group();
                if self.op_at(self.pos).is_some_and(|(op, _)| op == "->") {
                    self.bump();
                    self.bump();
                    let _ = self.parse_type();
                }
                break;
            }
            // A `<` glued into `<=` is a comparison operator leaking in
            // from expression position (`x as f64 <= y`), never generics.
            if self.at_punct("<") && self.op_at(self.pos).map(|(op, _)| op) != Some("<=") {
                args = self.parse_generic_args();
            }
            if self.op_at(self.pos).is_some_and(|(op, _)| op == "::") {
                self.bump();
                self.bump();
                continue;
            }
            break;
        }
        Type {
            kind: TypeKind::Path { segs, args },
            span: self.span_from(start),
        }
    }

    /// `<T, 'a, N, Item = T>` — returns the type arguments, dropping
    /// lifetimes, const expressions, and associated-type bindings.
    fn parse_generic_args(&mut self) -> Vec<Type> {
        let mut args = Vec::new();
        if !self.eat_punct("<") {
            return args;
        }
        loop {
            if self.out_of_fuel() || self.done() {
                return args;
            }
            if self.at_punct(">") {
                self.bump();
                return args;
            }
            if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime) {
                self.bump();
            } else if self.at_punct("{") {
                self.skip_group(); // const generic block
            } else if self.cur().is_some_and(|t| t.kind == TokKind::Lit) {
                self.bump(); // const generic literal
            } else {
                // Associated binding `Name = T`?
                if self.cur().is_some_and(|t| t.kind == TokKind::Ident)
                    && self.is_punct(self.pos + 1, "=")
                    && self.op_at_is_not(self.pos + 1, "==")
                {
                    self.bump();
                    self.bump();
                    let _ = self.parse_type();
                } else {
                    let ty = self.parse_type();
                    if matches!(ty.kind, TypeKind::Unknown)
                        && !self.at_punct(",")
                        && !self.at_punct(">")
                    {
                        // Lost sync: scan forward to `,` or `>` at depth 0.
                        while let Some(t) = self.cur() {
                            if t.kind == TokKind::Punct {
                                match t.text.as_str() {
                                    "," | ">" => break,
                                    "(" | "[" | "{" => {
                                        self.skip_group();
                                        continue;
                                    }
                                    _ => {}
                                }
                            }
                            self.bump();
                        }
                    }
                    args.push(ty);
                }
            }
            // Bounds on the argument (`T: Clone`) only appear in decl
            // position, which goes through skip_generics instead.
            if !self.eat_punct(",") && !self.at_punct(">") {
                self.issue("expected `,` or `>` in generic args");
                while let Some(t) = self.cur() {
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            ">" => {
                                self.bump();
                                return args;
                            }
                            "(" | "[" | "{" => {
                                self.skip_group();
                                continue;
                            }
                            ";" => return args,
                            _ => {}
                        }
                    }
                    self.bump();
                }
                return args;
            }
        }
    }

    // ------------------------------------------------------------------
    // Blocks and statements
    // ------------------------------------------------------------------

    fn parse_block(&mut self) -> Block {
        let start = self.pos;
        let mut stmts = Vec::new();
        if !self.eat_punct("{") {
            self.issue("expected `{` to start block");
            return Block {
                stmts,
                span: self.span_from(start),
            };
        }
        while !self.done() && !self.at_punct("}") {
            if self.out_of_fuel() {
                break;
            }
            let before = self.pos;
            self.skip_attrs();
            if self.eat_punct(";") {
                continue;
            }
            if self.at_punct("}") {
                break;
            }
            if self.at_ident("let") {
                stmts.push(self.parse_let());
            } else if self.at_item_start() {
                if let Some(item) = self.parse_item() {
                    stmts.push(Stmt::Item(Box::new(item)));
                }
            } else {
                // Rust's statement grammar: a block-like expression in
                // statement position ends at its closing `}` — no postfix
                // or binary continuation, so `while c { … } [a, b];` is
                // two statements, not an index.
                let e = if self.at_block_stmt_head() {
                    self.parse_primary(false)
                } else {
                    self.parse_expr(false)
                };
                self.eat_punct(";");
                stmts.push(Stmt::Expr(e));
            }
            if self.pos == before {
                self.issue("no progress in block");
                self.bump();
            }
        }
        if !self.eat_punct("}") {
            self.issue("unclosed block");
        }
        Block {
            stmts,
            span: self.span_from(start),
        }
    }

    /// Does the cursor start a block-like expression in statement
    /// position (`if`/`while`/`loop`/`for`/`match`, a bare block, or an
    /// `unsafe { … }` block)? These terminate at their closing `}`.
    fn at_block_stmt_head(&self) -> bool {
        let Some(t) = self.cur() else { return false };
        match t.kind {
            TokKind::Punct => t.text == "{",
            TokKind::Ident => match t.text.as_str() {
                "if" | "while" | "loop" | "for" | "match" => true,
                "unsafe" => self.is_punct(self.pos + 1, "{"),
                _ => false,
            },
            _ => false,
        }
    }

    /// Does the cursor start a block-level item (not an expression)?
    fn at_item_start(&self) -> bool {
        let Some(t) = self.cur() else { return false };
        if t.kind != TokKind::Ident {
            return false;
        }
        match t.text.as_str() {
            "use" | "type" | "struct" | "enum" | "static" | "trait" | "impl" | "mod" | "fn"
            | "macro_rules" => true,
            "pub" => true,
            "const" => {
                // `const fn` / `const NAME: …` are items; `const { … }` is
                // an expression block.
                !self.is_punct(self.pos + 1, "{")
            }
            "unsafe" => self
                .tok(self.pos + 1)
                .is_some_and(|n| n.kind == TokKind::Ident && (n.text == "fn" || n.text == "impl")),
            _ => false,
        }
    }

    fn parse_let(&mut self) -> Stmt {
        let start = self.pos;
        self.bump(); // `let`
        let name = self.parse_pattern_binding();
        let ty = if self.at_punct(":") && self.op_at_is_not(self.pos, "::") {
            self.bump();
            Some(self.parse_type())
        } else {
            None
        };
        let init = if self.op_at(self.pos).map(|(op, _)| op) == Some("=") {
            self.bump();
            Some(self.parse_expr(false))
        } else {
            None
        };
        // `let … else { … }` fallback block.
        if self.at_ident("else") {
            self.bump();
            if self.at_punct("{") {
                self.parse_block();
            }
        }
        self.eat_punct(";");
        Stmt::Let {
            name,
            ty,
            init,
            span: self.span_from(start),
        }
    }

    // ------------------------------------------------------------------
    // Expressions (pratt)
    // ------------------------------------------------------------------

    /// Parse one expression. `no_struct` suppresses struct literals at the
    /// top level (condition / scrutinee / iterator position).
    fn parse_expr(&mut self, no_struct: bool) -> Expr {
        self.parse_assign(no_struct)
    }

    fn parse_assign(&mut self, no_struct: bool) -> Expr {
        let start = self.pos;
        let lhs = self.parse_binary(0, no_struct);
        if let Some((op, n)) = self.binop_at_cursor() {
            if is_assign_op(&op) {
                for _ in 0..n {
                    self.bump();
                }
                let rhs = self.parse_assign(no_struct);
                return Expr {
                    kind: ExprKind::Assign {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    },
                    span: self.span_from(start),
                    tok: start,
                };
            }
        }
        lhs
    }

    fn parse_binary(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let start = self.pos;
        let mut lhs = self.parse_unary(no_struct);
        loop {
            if self.out_of_fuel() {
                return lhs;
            }
            // `as` cast binds tighter than any binary operator here.
            if self.at_ident("as") {
                self.bump();
                let ty = self.parse_type();
                lhs = Expr {
                    kind: ExprKind::Cast {
                        expr: Box::new(lhs),
                        ty,
                    },
                    span: self.span_from(start),
                    tok: start,
                };
                continue;
            }
            let Some((op, n)) = self.binop_at_cursor() else {
                return lhs;
            };
            if is_assign_op(&op) {
                return lhs; // handled by parse_assign
            }
            let Some(bp) = bin_bp(&op) else { return lhs };
            if bp < min_bp {
                return lhs;
            }
            for _ in 0..n {
                self.bump();
            }
            if op == ".." || op == "..=" {
                // Open-ended ranges: `a..` (no rhs at `,`/`)`/`]`/`{`/`;`).
                let hi = if self.range_has_rhs(no_struct) {
                    Some(Box::new(self.parse_binary(bp + 1, no_struct)))
                } else {
                    None
                };
                lhs = Expr {
                    kind: ExprKind::Range {
                        lo: Some(Box::new(lhs)),
                        hi,
                    },
                    span: self.span_from(start),
                    tok: start,
                };
                continue;
            }
            let rhs = self.parse_binary(bp + 1, no_struct);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span: self.span_from(start),
                tok: start,
            };
        }
    }

    fn range_has_rhs(&self, no_struct: bool) -> bool {
        match self.cur() {
            None => false,
            Some(t) if t.kind == TokKind::Punct => {
                if no_struct && t.text == "{" {
                    false
                } else {
                    !matches!(t.text.as_str(), "," | ")" | "]" | ";" | "}")
                }
            }
            _ => true,
        }
    }

    fn parse_unary(&mut self, no_struct: bool) -> Expr {
        let start = self.pos;
        if self.out_of_fuel() {
            return Expr {
                kind: ExprKind::Unknown,
                span: self.span_from(start),
                tok: start,
            };
        }
        // `&` reference-of. A glued `&&x` double-reference falls out
        // naturally: the recursive call sees the second `&`.
        if self.at_punct("&") {
            self.bump();
            let mutable = self.eat_ident("mut");
            let e = self.parse_unary(no_struct);
            return Expr {
                kind: ExprKind::Ref {
                    mutable,
                    expr: Box::new(e),
                },
                span: self.span_from(start),
                tok: start,
            };
        }
        if self.at_punct("!") || self.at_punct("-") || self.at_punct("*") {
            let op = self.cur().unwrap().text.clone();
            self.bump();
            let e = self.parse_unary(no_struct);
            return Expr {
                kind: ExprKind::Unary {
                    op,
                    expr: Box::new(e),
                },
                span: self.span_from(start),
                tok: start,
            };
        }
        // Leading range `..x` / `..=x` / bare `..`.
        if let Some((op @ (".." | "..="), n)) = self.op_at(self.pos) {
            let _ = op;
            for _ in 0..n {
                self.bump();
            }
            let hi = if self.range_has_rhs(no_struct) {
                Some(Box::new(self.parse_binary(5, no_struct)))
            } else {
                None
            };
            return Expr {
                kind: ExprKind::Range { lo: None, hi },
                span: self.span_from(start),
                tok: start,
            };
        }
        self.parse_postfix(no_struct)
    }

    fn parse_postfix(&mut self, no_struct: bool) -> Expr {
        let start = self.pos;
        let mut e = self.parse_primary(no_struct);
        loop {
            if self.out_of_fuel() {
                return e;
            }
            // Field access / method call: `.name`, `.0`, `.name(…)`,
            // `.name::<T>(…)`, `.await`. `op_at` glues `..` ranges first,
            // so a match on `.` is unambiguous.
            if self.op_at(self.pos).map(|(op, _)| op) == Some(".") {
                self.bump();
                if self.eat_ident("await") {
                    e = Expr {
                        kind: ExprKind::Field {
                            recv: Box::new(e),
                            name: "await".into(),
                        },
                        span: self.span_from(start),
                        tok: start,
                    };
                    continue;
                }
                if let Some(t) = self.cur() {
                    if t.kind == TokKind::Lit {
                        // Tuple index — `x.0`, possibly glued as `0.1` for
                        // `x.0.1`: split on the dot.
                        let text = t.text.clone();
                        self.bump();
                        for part in text.split('.') {
                            e = Expr {
                                kind: ExprKind::Field {
                                    recv: Box::new(e),
                                    name: part.to_string(),
                                },
                                span: self.span_from(start),
                                tok: start,
                            };
                        }
                        continue;
                    }
                }
                let Some(name) = self.take_ident() else {
                    self.issue("expected name after `.`");
                    return e;
                };
                // Turbofish on the method.
                if self.op_at(self.pos).is_some_and(|(op, _)| op == "::") {
                    self.bump();
                    self.bump();
                    if self.at_punct("<") {
                        let _ = self.parse_generic_args();
                    }
                }
                if self.at_punct("(") {
                    let args = self.parse_call_args();
                    e = Expr {
                        kind: ExprKind::MethodCall {
                            recv: Box::new(e),
                            name,
                            args,
                        },
                        span: self.span_from(start),
                        tok: start,
                    };
                } else {
                    e = Expr {
                        kind: ExprKind::Field {
                            recv: Box::new(e),
                            name,
                        },
                        span: self.span_from(start),
                        tok: start,
                    };
                }
                continue;
            }
            if self.at_punct("?") {
                self.bump();
                e = Expr {
                    kind: ExprKind::Try(Box::new(e)),
                    span: self.span_from(start),
                    tok: start,
                };
                continue;
            }
            if self.at_punct("(") {
                let args = self.parse_call_args();
                e = Expr {
                    kind: ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                    span: self.span_from(start),
                    tok: start,
                };
                continue;
            }
            if self.at_punct("[") {
                self.bump();
                let idx = self.parse_expr(false);
                if !self.eat_punct("]") {
                    self.issue("unclosed `[` index");
                }
                e = Expr {
                    kind: ExprKind::Index {
                        recv: Box::new(e),
                        index: Box::new(idx),
                    },
                    span: self.span_from(start),
                    tok: start,
                };
                continue;
            }
            return e;
        }
    }

    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        while !self.done() && !self.at_punct(")") {
            if self.out_of_fuel() {
                return args;
            }
            args.push(self.parse_expr(false));
            if !self.eat_punct(",") && !self.at_punct(")") {
                self.issue("expected `,` or `)` in call args");
                // Resync: skip to the next depth-0 `,` or `)`.
                while let Some(t) = self.cur() {
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "," => {
                                self.bump();
                                break;
                            }
                            ")" => break,
                            "(" | "[" | "{" => {
                                self.skip_group();
                                continue;
                            }
                            ";" => return args,
                            _ => {}
                        }
                    }
                    self.bump();
                }
            }
        }
        if !self.eat_punct(")") {
            self.issue("unclosed `(` call");
        }
        args
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let start = self.pos;
        let mk = |p: &Self, kind: ExprKind| Expr {
            kind,
            span: p.span_from(start),
            tok: start,
        };
        let Some(t) = self.cur() else {
            self.issue("expected expression, found end of input");
            return Expr {
                kind: ExprKind::Unknown,
                span: self.span_from(start),
                tok: start,
            };
        };
        match t.kind {
            TokKind::Lit => {
                let text = t.text.clone();
                self.bump();
                mk(self, ExprKind::Lit(text))
            }
            TokKind::Lifetime => {
                // Loop label `'outer: loop { … }` — consume label + colon
                // and parse the labeled expression.
                self.bump();
                self.eat_punct(":");
                self.parse_primary(no_struct)
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    self.bump();
                    let mut elems = Vec::new();
                    let mut trailing = false;
                    while !self.done() && !self.at_punct(")") {
                        if self.out_of_fuel() {
                            break;
                        }
                        elems.push(self.parse_expr(false));
                        trailing = self.eat_punct(",");
                        if !trailing && !self.at_punct(")") {
                            self.issue("expected `,` or `)` in tuple");
                            break;
                        }
                    }
                    if !self.eat_punct(")") {
                        self.issue("unclosed `(`");
                    }
                    if elems.len() == 1 && !trailing {
                        let inner = elems.pop().unwrap();
                        Expr {
                            kind: inner.kind,
                            span: self.span_from(start),
                            tok: start,
                        }
                    } else {
                        mk(self, ExprKind::Tuple(elems))
                    }
                }
                "[" => {
                    self.bump();
                    let mut elems = Vec::new();
                    while !self.done() && !self.at_punct("]") {
                        if self.out_of_fuel() {
                            break;
                        }
                        elems.push(self.parse_expr(false));
                        if self.eat_punct(";") {
                            // `[x; len]` repeat form.
                            elems.push(self.parse_expr(false));
                            break;
                        }
                        if !self.eat_punct(",") && !self.at_punct("]") {
                            self.issue("expected `,` or `]` in array");
                            break;
                        }
                    }
                    if !self.eat_punct("]") {
                        self.issue("unclosed `[`");
                    }
                    mk(self, ExprKind::Array(elems))
                }
                "{" => {
                    let b = self.parse_block();
                    mk(self, ExprKind::Block(b))
                }
                "|" => self.parse_closure(start),
                "<" => {
                    // Qualified path expression `<T as Tr>::f(…)`.
                    self.skip_generics();
                    let mut segs = vec!["<qualified>".to_string()];
                    while self.op_at(self.pos).is_some_and(|(op, _)| op == "::") {
                        self.bump();
                        self.bump();
                        if let Some(seg) = self.take_ident() {
                            segs.push(seg);
                        } else if self.at_punct("<") {
                            let _ = self.parse_generic_args();
                        }
                    }
                    mk(self, ExprKind::Path(segs))
                }
                "#" => {
                    // Stray attribute in expression position (e.g. before a
                    // closure arg) — skip and retry.
                    self.skip_attrs();
                    if self.pos == start {
                        self.bump();
                        return mk(self, ExprKind::Unknown);
                    }
                    self.parse_primary(no_struct)
                }
                _ => {
                    if self.op_at(self.pos).is_some_and(|(op, _)| op == "||") {
                        return self.parse_closure(start);
                    }
                    self.issue(&format!("unexpected token `{}`", t.text));
                    self.bump();
                    mk(self, ExprKind::Unknown)
                }
            },
            TokKind::Ident => match t.text.as_str() {
                "if" => self.parse_if(),
                "match" => self.parse_match(),
                "for" => self.parse_for(),
                "while" => self.parse_while(),
                "loop" => {
                    self.bump();
                    let b = self.parse_block();
                    mk(self, ExprKind::Loop { body: b })
                }
                "unsafe" | "const" if self.is_punct(self.pos + 1, "{") => {
                    self.bump();
                    let b = self.parse_block();
                    mk(self, ExprKind::Block(b))
                }
                "move" => {
                    self.bump();
                    self.parse_closure(start)
                }
                "return" => {
                    self.bump();
                    let val = if self.expr_follows() {
                        Some(Box::new(self.parse_expr(false)))
                    } else {
                        None
                    };
                    mk(self, ExprKind::Return(val))
                }
                "break" => {
                    self.bump();
                    if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump();
                    }
                    if self.expr_follows() {
                        let _ = self.parse_expr(false);
                    }
                    mk(self, ExprKind::Break)
                }
                "continue" => {
                    self.bump();
                    if self.cur().is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump();
                    }
                    mk(self, ExprKind::Continue)
                }
                _ => self.parse_path_expr(no_struct),
            },
        }
    }

    /// After `return`/`break`: is there a value expression?
    fn expr_follows(&self) -> bool {
        match self.cur() {
            None => false,
            Some(t) if t.kind == TokKind::Punct => {
                !matches!(t.text.as_str(), ";" | "}" | ")" | "]" | ",")
            }
            _ => true,
        }
    }

    fn parse_closure(&mut self, start: usize) -> Expr {
        // `|args| body` or glued `||` for no args.
        let mut params = Vec::new();
        if self.op_at(self.pos).is_some_and(|(op, _)| op == "||") {
            self.bump();
            self.bump();
        } else if self.eat_punct("|") {
            while !self.done() && !self.at_punct("|") {
                if self.out_of_fuel() {
                    break;
                }
                let name = self.parse_pattern_binding();
                let ty = if self.at_punct(":") && self.op_at_is_not(self.pos, "::") {
                    self.bump();
                    Some(self.parse_type())
                } else {
                    None
                };
                params.push(Param {
                    name: name.unwrap_or_else(|| "_".into()),
                    ty,
                });
                if !self.eat_punct(",") {
                    break;
                }
            }
            if !self.eat_punct("|") {
                self.issue("unclosed closure params");
            }
        }
        if self.op_at(self.pos).is_some_and(|(op, _)| op == "->") {
            self.bump();
            self.bump();
            let _ = self.parse_type();
        }
        let body = self.parse_expr(false);
        Expr {
            kind: ExprKind::Closure {
                params,
                body: Box::new(body),
            },
            span: self.span_from(start),
            tok: start,
        }
    }

    fn parse_if(&mut self) -> Expr {
        let start = self.pos;
        self.bump(); // `if`
        let cond = if self.eat_ident("let") {
            // `if let PAT = expr` — skip the pattern, parse the matched
            // expression as the condition.
            self.parse_pattern_binding();
            self.eat_punct("=");
            self.parse_expr(true)
        } else {
            self.parse_expr(true)
        };
        let then = self.parse_block();
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                Some(Box::new(self.parse_if()))
            } else {
                let b = self.parse_block();
                Some(Box::new(Expr {
                    kind: ExprKind::Block(b),
                    span: self.span_from(start),
                    tok: start,
                }))
            }
        } else {
            None
        };
        Expr {
            kind: ExprKind::If {
                cond: Box::new(cond),
                then,
                els,
            },
            span: self.span_from(start),
            tok: start,
        }
    }

    fn parse_match(&mut self) -> Expr {
        let start = self.pos;
        self.bump(); // `match`
        let scrutinee = self.parse_expr(true);
        let mut arms = Vec::new();
        if !self.eat_punct("{") {
            self.issue("expected `{` after match scrutinee");
            return Expr {
                kind: ExprKind::Match {
                    scrutinee: Box::new(scrutinee),
                    arms,
                },
                span: self.span_from(start),
                tok: start,
            };
        }
        while !self.done() && !self.at_punct("}") {
            if self.out_of_fuel() {
                break;
            }
            self.skip_attrs();
            if self.at_punct("}") {
                break;
            }
            let arm_start = self.pos;
            // Pattern: raw tokens up to a depth-0 `=>` or `if` guard.
            let pat_start = self.pos;
            let mut depth = 0i32;
            let mut guard = None;
            while let Some(t) = self.cur() {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=" if depth == 0
                            && self.op_at(self.pos).is_some_and(|(op, _)| op == "=>") =>
                        {
                            break;
                        }
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident && t.text == "if" && depth == 0 {
                    break;
                }
                self.bump();
            }
            let pat_end = self.pos;
            if self.eat_ident("if") {
                guard = Some(self.parse_expr(true));
            }
            if self.op_at(self.pos).is_some_and(|(op, _)| op == "=>") {
                self.bump();
                self.bump();
            } else {
                self.issue("expected `=>` in match arm");
            }
            let body = self.parse_expr(false);
            self.eat_punct(",");
            arms.push(Arm {
                pat_toks: (pat_start, pat_end),
                guard,
                body,
                span: self.span_from(arm_start),
            });
        }
        if !self.eat_punct("}") {
            self.issue("unclosed match block");
        }
        Expr {
            kind: ExprKind::Match {
                scrutinee: Box::new(scrutinee),
                arms,
            },
            span: self.span_from(start),
            tok: start,
        }
    }

    fn parse_for(&mut self) -> Expr {
        let start = self.pos;
        self.bump(); // `for`
        let pat = self.parse_pattern_binding();
        self.eat_ident("in");
        let iter = self.parse_expr(true);
        let body = self.parse_block();
        Expr {
            kind: ExprKind::For {
                pat,
                iter: Box::new(iter),
                body,
            },
            span: self.span_from(start),
            tok: start,
        }
    }

    fn parse_while(&mut self) -> Expr {
        let start = self.pos;
        self.bump(); // `while`
        let cond = if self.eat_ident("let") {
            self.parse_pattern_binding();
            self.eat_punct("=");
            self.parse_expr(true)
        } else {
            self.parse_expr(true)
        };
        let body = self.parse_block();
        Expr {
            kind: ExprKind::While {
                cond: Box::new(cond),
                body,
            },
            span: self.span_from(start),
            tok: start,
        }
    }

    /// Path expression, possibly a macro call or struct literal.
    fn parse_path_expr(&mut self, no_struct: bool) -> Expr {
        let start = self.pos;
        let mut segs = Vec::new();
        while let Some(seg) = self.take_ident() {
            segs.push(seg);
            if self.op_at(self.pos).is_some_and(|(op, _)| op == "::") {
                self.bump();
                self.bump();
                // Turbofish `::<T>`.
                if self.at_punct("<") {
                    let _ = self.parse_generic_args();
                    if self.op_at(self.pos).is_some_and(|(op, _)| op == "::") {
                        self.bump();
                        self.bump();
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            self.issue("expected path expression");
            if !self.done() {
                self.bump();
            }
            return Expr {
                kind: ExprKind::Unknown,
                span: self.span_from(start),
                tok: start,
            };
        }
        // Macro call.
        if self.at_punct("!") && self.op_at_is_not(self.pos, "!=") {
            self.bump();
            return self.parse_macro_call(start, segs);
        }
        // Struct literal.
        if self.at_punct("{") && !no_struct {
            self.bump();
            let mut fields = Vec::new();
            while !self.done() && !self.at_punct("}") {
                if self.out_of_fuel() {
                    break;
                }
                self.skip_attrs();
                if self.op_at(self.pos).is_some_and(|(op, _)| op == "..") {
                    // `..base` functional update — or a bare `{ .. }` rest
                    // pattern when a macro like `matches!` hands us a
                    // pattern in expression position.
                    self.bump();
                    self.bump();
                    if !self.at_punct("}") {
                        let _ = self.parse_expr(false);
                    }
                    break;
                }
                let Some(fname) = self.take_ident() else {
                    self.issue("expected field in struct literal");
                    break;
                };
                if self.at_punct(":") && self.op_at_is_not(self.pos, "::") {
                    self.bump();
                    let val = self.parse_expr(false);
                    fields.push((fname, val));
                } else {
                    // Shorthand `Name { field }`.
                    let span = self.span_from(self.pos.saturating_sub(1));
                    fields.push((
                        fname.clone(),
                        Expr {
                            kind: ExprKind::Path(vec![fname]),
                            span,
                            tok: self.pos.saturating_sub(1),
                        },
                    ));
                }
                if !self.eat_punct(",") && !self.at_punct("}") {
                    self.issue("expected `,` or `}` in struct literal");
                    break;
                }
            }
            if !self.eat_punct("}") {
                self.issue("unclosed struct literal");
            }
            return Expr {
                kind: ExprKind::StructLit { path: segs, fields },
                span: self.span_from(start),
                tok: start,
            };
        }
        Expr {
            kind: ExprKind::Path(segs),
            span: self.span_from(start),
            tok: start,
        }
    }

    /// `name!(…)` — arguments parsed best-effort as comma-separated
    /// expressions for `(…)`/`[…]` delimiters; `{…}` bodies are skipped.
    fn parse_macro_call(&mut self, start: usize, path: Vec<String>) -> Expr {
        let mut args = Vec::new();
        if self.at_punct("{") {
            self.skip_group();
        } else if self.at_punct("(") || self.at_punct("[") {
            let close = if self.at_punct("(") { ")" } else { "]" };
            self.bump();
            while !self.done() && !self.at_punct(close) {
                if self.out_of_fuel() {
                    break;
                }
                let before = self.pos;
                args.push(self.parse_expr(false));
                if !self.eat_punct(",") && !self.at_punct(close) {
                    // Macro-specific syntax (`=>` arms, token trees…):
                    // resync to the next depth-0 comma or the closer.
                    while let Some(t) = self.cur() {
                        if t.kind == TokKind::Punct {
                            match t.text.as_str() {
                                "," => {
                                    self.bump();
                                    break;
                                }
                                "(" | "[" | "{" => {
                                    self.skip_group();
                                    continue;
                                }
                                c if c == close => break,
                                _ => {}
                            }
                        }
                        self.bump();
                    }
                }
                if self.pos == before {
                    self.bump();
                }
            }
            if !self.eat_punct(close) {
                self.issue("unclosed macro call");
            }
        }
        Expr {
            kind: ExprKind::Macro { path, args },
            span: self.span_from(start),
            tok: start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> File {
        let lexed = lex(src);
        let (file, issues) = parse(&lexed.toks);
        assert!(issues.is_empty(), "issues for {src:?}: {issues:#?}");
        file
    }

    #[test]
    fn items_round_trip() {
        let f = parse_ok(
            "use std::collections::{BTreeMap, BTreeSet};\n\
             type Index = BTreeMap<u32, Vec<u8>>;\n\
             pub struct S { pub a: u32, b: Index }\n\
             enum E { A, B(u8), C { x: u32 } }\n\
             static mut COUNTER: u64 = 0;\n\
             const K: usize = 3;\n\
             fn f(a: u32, b: &S) -> u64 { a as u64 }\n",
        );
        assert_eq!(f.items.len(), 7);
        match &f.items[1].kind {
            ItemKind::TypeAlias { name, ty } => {
                assert_eq!(name, "Index");
                assert_eq!(ty.head(), Some("BTreeMap"));
            }
            k => panic!("expected alias, got {k:?}"),
        }
        match &f.items[3].kind {
            ItemKind::Enum { name, variants } => {
                assert_eq!(name, "E");
                let names: Vec<_> = variants.iter().map(|v| v.name.as_str()).collect();
                assert_eq!(names, vec!["A", "B", "C"]);
            }
            k => panic!("expected enum, got {k:?}"),
        }
        match &f.items[4].kind {
            ItemKind::Static { name, mutable, .. } => {
                assert_eq!(name, "COUNTER");
                assert!(mutable);
            }
            k => panic!("expected static, got {k:?}"),
        }
    }

    #[test]
    fn impl_blocks_and_methods() {
        let f = parse_ok(
            "impl Foo { fn get(&self) -> u32 { self.x } }\n\
             impl Iterator for Foo { type Item = u32; fn next(&mut self) -> Option<u32> { None } }\n",
        );
        match &f.items[0].kind {
            ItemKind::Impl {
                target,
                trait_,
                items,
            } => {
                assert_eq!(target.as_deref(), Some("Foo"));
                assert!(trait_.is_none());
                assert_eq!(items.len(), 1);
            }
            k => panic!("expected impl, got {k:?}"),
        }
        match &f.items[1].kind {
            ItemKind::Impl { target, trait_, .. } => {
                assert_eq!(target.as_deref(), Some("Foo"));
                assert_eq!(trait_.as_deref(), Some("Iterator"));
            }
            k => panic!("expected trait impl, got {k:?}"),
        }
    }

    #[test]
    fn nested_generics_close_without_shift_confusion() {
        let f = parse_ok("fn f(m: BTreeMap<u32, Vec<Vec<u8>>>) -> u64 { 1 >> 2 }");
        match &f.items[0].kind {
            ItemKind::Fn(fd) => {
                let ty = fd.params[0].ty.as_ref().unwrap();
                assert_eq!(ty.head(), Some("BTreeMap"));
                let body = fd.body.as_ref().unwrap();
                match &body.stmts[0] {
                    Stmt::Expr(Expr {
                        kind: ExprKind::Binary { op, .. },
                        ..
                    }) => assert_eq!(op, ">>"),
                    s => panic!("expected shift, got {s:?}"),
                }
            }
            k => panic!("expected fn, got {k:?}"),
        }
    }

    #[test]
    fn struct_literal_vs_block() {
        let f = parse_ok("fn f() -> S { if x { S { a: 1 } } else { S { a: 2 } } }");
        // The `if` condition must not swallow `{ S { a: 1 } }` as a
        // struct literal on `x`.
        match &f.items[0].kind {
            ItemKind::Fn(fd) => {
                let body = fd.body.as_ref().unwrap();
                match &body.stmts[0] {
                    Stmt::Expr(Expr {
                        kind: ExprKind::If { cond, .. },
                        ..
                    }) => match &cond.kind {
                        ExprKind::Path(p) => assert_eq!(p, &vec!["x".to_string()]),
                        k => panic!("expected path cond, got {k:?}"),
                    },
                    s => panic!("expected if, got {s:?}"),
                }
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn spans_reconstruct_source() {
        let src = "fn f(a: u32) -> u32 { let b = a + 1; b * 2 }";
        let lexed = lex(src);
        let (file, issues) = parse(&lexed.toks);
        assert!(issues.is_empty());
        let item = &file.items[0];
        assert_eq!(&src[item.span.lo..item.span.hi], src);
    }

    #[test]
    fn match_arms_with_guards() {
        let f = parse_ok(
            "fn f(x: Option<u32>) -> u32 {\n\
               match x { Some(v) if v > 3 => v, Some(v) => v + 1, None => 0 }\n\
             }",
        );
        match &f.items[0].kind {
            ItemKind::Fn(fd) => match &fd.body.as_ref().unwrap().stmts[0] {
                Stmt::Expr(Expr {
                    kind: ExprKind::Match { arms, .. },
                    ..
                }) => {
                    assert_eq!(arms.len(), 3);
                    assert!(arms[0].guard.is_some());
                    assert!(arms[1].guard.is_none());
                }
                s => panic!("expected match, got {s:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn closures_and_method_chains() {
        let f = parse_ok("fn f(v: &[u64]) -> u64 { v.iter().map(|x| x + 1).sum::<u64>() }");
        match &f.items[0].kind {
            ItemKind::Fn(fd) => match &fd.body.as_ref().unwrap().stmts[0] {
                Stmt::Expr(Expr {
                    kind: ExprKind::MethodCall { name, .. },
                    ..
                }) => assert_eq!(name, "sum"),
                s => panic!("expected method chain, got {s:?}"),
            },
            _ => unreachable!(),
        }
    }
}
