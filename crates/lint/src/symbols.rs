//! Per-crate symbol tables and cross-crate resolution.
//!
//! Built from the parsed ASTs of every file in a crate, these tables let
//! the semantic rules see *through* names: a `for` loop over a field whose
//! type is a local alias of `HashMap` is just as nondeterministic as one
//! spelled out, and `agp_lint` should not care which way it was written.
//!
//! Resolution is deliberately name-based (no module hygiene): workspace
//! code does not shadow `HashMap` or `SimTime` with unrelated types, and
//! a rare false resolve surfaces as a reviewable diagnostic rather than a
//! missed hazard.

use std::collections::BTreeMap;

use crate::ast::{File, ItemKind, Type, Variant};

/// Container types whose iteration order is seeded per-process.
const HASH_HEADS: [&str; 2] = ["HashMap", "HashSet"];

/// Simulated-time wrapper types whose raw-integer escape hatches the
/// `sim-time-arith` rule guards.
const SIM_TIME_HEADS: [&str; 2] = ["SimTime", "SimDur"];

/// Symbols of a single crate.
#[derive(Debug, Default, Clone)]
pub struct CrateSymbols {
    pub name: String,
    /// `type Alias = T;` by alias name.
    pub aliases: BTreeMap<String, Type>,
    /// Struct name → field name → type.
    pub structs: BTreeMap<String, BTreeMap<String, Type>>,
    /// Enum name → variants.
    pub enums: BTreeMap<String, Vec<Variant>>,
    /// Free/method function name → declared return type (last wins; used
    /// only as a heuristic for locals initialized from call results).
    pub fn_returns: BTreeMap<String, Type>,
}

impl CrateSymbols {
    /// Accumulate one parsed file into the table.
    pub fn add_file(&mut self, file: &File) {
        file.walk_items(&mut |item| match &item.kind {
            ItemKind::TypeAlias { name, ty } => {
                self.aliases.insert(name.clone(), ty.clone());
            }
            ItemKind::Struct { name, fields } => {
                let entry = self.structs.entry(name.clone()).or_default();
                for (fname, fty) in fields {
                    entry.insert(fname.clone(), fty.clone());
                }
            }
            ItemKind::Enum { name, variants } => {
                self.enums.insert(name.clone(), variants.clone());
            }
            ItemKind::Fn(f) => {
                if let Some(ret) = &f.ret {
                    self.fn_returns.insert(f.name.clone(), ret.clone());
                }
            }
            _ => {}
        });
    }
}

/// All crates of one analysis run.
#[derive(Debug, Default, Clone)]
pub struct Workspace {
    pub crates: BTreeMap<String, CrateSymbols>,
}

impl Workspace {
    pub fn insert(&mut self, syms: CrateSymbols) {
        self.crates.insert(syms.name.clone(), syms.clone());
    }

    /// Follow `type A = B` chains starting from `head` (a bare type name),
    /// looking first in `home` then in every other crate, until a
    /// non-alias name or a cycle/depth bound is reached.
    fn resolve_head<'a>(&'a self, home: &'a CrateSymbols, head: &'a str) -> &'a str {
        let mut cur = head;
        for _ in 0..8 {
            let next = home
                .aliases
                .get(cur)
                .or_else(|| self.crates.values().find_map(|c| c.aliases.get(cur)));
            match next.and_then(|t| t.head()) {
                Some(h) if h != cur => cur = h,
                _ => return cur,
            }
        }
        cur
    }

    /// Does `ty` resolve (through references and aliases) to a hash
    /// container?
    pub fn is_hash(&self, home: &CrateSymbols, ty: &Type) -> bool {
        match ty.head() {
            Some(h) => HASH_HEADS.contains(&self.resolve_head(home, h)),
            None => false,
        }
    }

    /// Does `ty` resolve to a sim-time wrapper (`SimTime` / `SimDur`)?
    pub fn is_sim_time(&self, home: &CrateSymbols, ty: &Type) -> bool {
        match ty.head() {
            Some(h) => SIM_TIME_HEADS.contains(&self.resolve_head(home, h)),
            None => false,
        }
    }

    /// Field type lookup: `struct_name.field` in `home` first, then any
    /// crate (cross-crate struct access goes through re-exports).
    pub fn field_type<'a>(
        &'a self,
        home: &'a CrateSymbols,
        struct_name: &str,
        field: &str,
    ) -> Option<&'a Type> {
        home.structs
            .get(struct_name)
            .and_then(|f| f.get(field))
            .or_else(|| {
                self.crates
                    .values()
                    .find_map(|c| c.structs.get(struct_name).and_then(|f| f.get(field)))
            })
    }

    /// Return type of a named function, `home` first.
    pub fn fn_return<'a>(&'a self, home: &'a CrateSymbols, name: &str) -> Option<&'a Type> {
        home.fn_returns
            .get(name)
            .or_else(|| self.crates.values().find_map(|c| c.fn_returns.get(name)))
    }

    /// Is `name` (a bare type name) a sim-time head after aliasing?
    pub fn name_is_sim_time(&self, home: &CrateSymbols, name: &str) -> bool {
        SIM_TIME_HEADS.contains(&self.resolve_head(home, name))
    }

    /// Is `name` a hash-container head after aliasing?
    pub fn name_is_hash(&self, home: &CrateSymbols, name: &str) -> bool {
        HASH_HEADS.contains(&self.resolve_head(home, name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn syms(name: &str, src: &str) -> CrateSymbols {
        let lexed = lex(src);
        let (file, issues) = parse(&lexed.toks);
        assert!(issues.is_empty(), "{issues:?}");
        let mut s = CrateSymbols {
            name: name.into(),
            ..Default::default()
        };
        s.add_file(&file);
        s
    }

    #[test]
    fn alias_chain_resolves_to_hash() {
        let s = syms(
            "a",
            "type Inner = std::collections::HashMap<u32, u32>;\ntype Outer = Inner;\n",
        );
        let mut ws = Workspace::default();
        ws.insert(s);
        let home = &ws.crates["a"];
        assert!(ws.name_is_hash(home, "Outer"));
        assert!(ws.name_is_hash(home, "Inner"));
        assert!(!ws.name_is_hash(home, "BTreeMap"));
    }

    #[test]
    fn cross_crate_alias_resolution() {
        let a = syms("a", "pub type SharedIndex = HashMap<u64, u64>;\n");
        let b = syms("b", "type Local = SharedIndex;\n");
        let mut ws = Workspace::default();
        ws.insert(a);
        ws.insert(b);
        let home = &ws.crates["b"];
        assert!(ws.name_is_hash(home, "Local"));
    }

    #[test]
    fn alias_cycles_terminate() {
        let s = syms("a", "type A = B;\ntype B = A;\n");
        let mut ws = Workspace::default();
        ws.insert(s);
        let home = &ws.crates["a"];
        assert!(!ws.name_is_hash(home, "A"));
    }

    #[test]
    fn struct_fields_and_sim_time() {
        let s = syms(
            "a",
            "struct Sched { pub deadline: SimTime, frames: Vec<u64> }\n\
             type When = SimDur;\n\
             fn quantum() -> When { When::from_us(10) }\n",
        );
        let mut ws = Workspace::default();
        ws.insert(s);
        let home = &ws.crates["a"];
        let f = ws.field_type(home, "Sched", "deadline").unwrap();
        assert!(ws.is_sim_time(home, f));
        assert!(ws.name_is_sim_time(home, "When"));
        let r = ws.fn_return(home, "quantum").unwrap();
        assert!(ws.is_sim_time(home, r));
    }
}
