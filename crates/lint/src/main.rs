//! `agp-lint` CLI.
//!
//! ```text
//! cargo run -p agp-lint --                    # lint the workspace, text report
//! cargo run -p agp-lint -- --format json      # machine-readable report
//! cargo run -p agp-lint -- --format sarif     # SARIF 2.1.0 on stdout
//! cargo run -p agp-lint -- --sarif out.sarif  # text report + SARIF artifact
//! cargo run -p agp-lint -- --deny-warnings    # warnings also fail (CI mode)
//! cargo run -p agp-lint -- --explain nondet-iter
//! cargo run -p agp-lint -- path/to/file.rs    # lint explicit paths only
//! ```
//!
//! Exit codes: 0 clean, 1 findings (errors, or warnings under
//! `--deny-warnings`), 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use agp_lint::{
    exit_code, explain, lint_paths, lint_workspace, render_json, render_sarif, rules, Severity,
};

const USAGE: &str = "\
agp-lint: determinism & robustness static analysis for the agp workspace

USAGE:
    agp-lint [OPTIONS] [PATHS...]

OPTIONS:
    --format <text|json|sarif>   report format (default: text)
    --sarif <FILE>               also write a SARIF 2.1.0 report to FILE
    --explain <RULE-ID>          print the rationale for a rule and exit
    --deny-warnings              exit non-zero on warnings too (CI mode)
    --root <DIR>                 workspace root to scan (default: auto-detected)
    -h, --help                   show this help

With no PATHS, lints every workspace crate's src/ tree, honouring
[package.metadata.agp-lint] allow lists. With PATHS, lints exactly those
files/directories with no crate-level allows (site suppressions still
apply).

LINTS (id — severity):
";

fn print_usage() {
    print!("{USAGE}");
    for id in rules::ALL_IDS {
        let sev = match id {
            rules::FLOAT_ACCUMULATE | rules::PANIC_SITE => "warn",
            _ => "error",
        };
        println!("    {id} — {sev}");
    }
}

/// Locate the workspace root: walk up from the current directory to the
/// first `Cargo.toml` containing a `[workspace]` table.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut sarif_path: Option<PathBuf> = None;
    let mut deny_warnings = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "agp-lint: --format expects `text`, `json`, or `sarif`, got {other:?}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--sarif" => match args.next() {
                Some(f) => sarif_path = Some(PathBuf::from(f)),
                None => {
                    eprintln!("agp-lint: --sarif expects an output file");
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                return match args.next().as_deref().and_then(explain::explain) {
                    Some(text) => {
                        print!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!(
                            "agp-lint: --explain expects one of: {}",
                            rules::ALL_IDS.join(", ")
                        );
                        ExitCode::from(2)
                    }
                };
            }
            "--deny-warnings" => deny_warnings = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("agp-lint: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("agp-lint: unknown option {other}");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let result = if paths.is_empty() {
        let root = match root.or_else(find_root) {
            Some(r) => r,
            None => {
                eprintln!("agp-lint: could not find a workspace root (use --root)");
                return ExitCode::from(2);
            }
        };
        lint_workspace(&root)
    } else {
        lint_paths(&paths)
    };

    let diags = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("agp-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &sarif_path {
        if let Err(e) = std::fs::write(path, render_sarif(&diags)) {
            eprintln!("agp-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match format {
        Format::Json => print!("{}", render_json(&diags)),
        Format::Sarif => print!("{}", render_sarif(&diags)),
        Format::Text => {
            for d in &diags {
                println!("{}", d.render_text());
            }
            let errors = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count();
            let warnings = diags
                .iter()
                .filter(|d| d.severity == Severity::Warn)
                .count();
            if diags.is_empty() {
                println!("agp-lint: clean");
            } else {
                println!("agp-lint: {errors} error(s), {warnings} warning(s)");
            }
        }
    }

    ExitCode::from(exit_code(&diags, deny_warnings) as u8)
}
