//! `agp-lint` CLI.
//!
//! ```text
//! cargo run -p agp-lint --                    # lint the workspace, text report
//! cargo run -p agp-lint -- --format json      # machine-readable report
//! cargo run -p agp-lint -- --deny-warnings    # warnings also fail (CI mode)
//! cargo run -p agp-lint -- path/to/file.rs    # lint explicit paths only
//! ```
//!
//! Exit codes: 0 clean, 1 findings (errors, or warnings under
//! `--deny-warnings`), 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use agp_lint::{exit_code, lint_paths, lint_workspace, render_json, rules, Severity};

const USAGE: &str = "\
agp-lint: determinism & robustness static analysis for the agp workspace

USAGE:
    agp-lint [OPTIONS] [PATHS...]

OPTIONS:
    --format <text|json>   report format (default: text)
    --deny-warnings        exit non-zero on warnings too (CI mode)
    --root <DIR>           workspace root to scan (default: auto-detected)
    -h, --help             show this help

With no PATHS, lints every workspace crate's src/ tree, honouring
[package.metadata.agp-lint] allow lists. With PATHS, lints exactly those
files/directories with no crate-level allows (site suppressions still
apply).

LINTS (id — severity):
";

fn print_usage() {
    print!("{USAGE}");
    for id in rules::ALL_IDS {
        let sev = match id {
            rules::FLOAT_ACCUMULATE | rules::PANIC_SITE => "warn",
            _ => "error",
        };
        println!("    {id} — {sev}");
    }
}

/// Locate the workspace root: walk up from the current directory to the
/// first `Cargo.toml` containing a `[workspace]` table.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut format_json = false;
    let mut deny_warnings = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("agp-lint: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--deny-warnings" => deny_warnings = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("agp-lint: --root expects a directory");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("agp-lint: unknown option {other}");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let result = if paths.is_empty() {
        let root = match root.or_else(find_root) {
            Some(r) => r,
            None => {
                eprintln!("agp-lint: could not find a workspace root (use --root)");
                return ExitCode::from(2);
            }
        };
        lint_workspace(&root)
    } else {
        lint_paths(&paths)
    };

    let diags = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("agp-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if format_json {
        print!("{}", render_json(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render_text());
        }
        let errors = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = diags
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count();
        if diags.is_empty() {
            println!("agp-lint: clean");
        } else {
            println!("agp-lint: {errors} error(s), {warnings} warning(s)");
        }
    }

    ExitCode::from(exit_code(&diags, deny_warnings) as u8)
}
