//! Cross-crate event-protocol exhaustiveness (`event-protocol`).
//!
//! The observability contract of the workspace is the `ObsEvent` enum: the
//! simulation crates emit events, `agp-explain` consumes them. The
//! contract rots in three directions — a variant nobody ever constructs
//! (dead protocol surface that still costs every consumer a match arm),
//! a variant the explain pass silently funnels into a wildcard arm
//! (new telemetry that never reaches the analysis it was added for),
//! and a variant the `agp postmortem` triage never names (incident
//! telemetry the flight recorder captures but the post-mortem report
//! cannot classify). None of the three is visible to `cargo check`,
//! because every side compiles fine.
//!
//! This pass runs only on whole-workspace analyses. It finds the `enum
//! ObsEvent` definition, then:
//!
//! * **emission**: walks every function body outside explain-side crates
//!   for *constructions* of each variant — `ObsEvent::V { .. }` struct
//!   literals, `ObsEvent::V(..)` calls, or bare `ObsEvent::V` paths.
//!   Match patterns are not expressions in the AST, so merely matching a
//!   variant does not count as emitting it.
//! * **handling**: scans the token streams of crates whose name contains
//!   `explain` for literal `ObsEvent::V` references. A variant handled
//!   only by `_ =>` never spells its name, so it shows up as unhandled.
//! * **triage**: the same token scan restricted to postmortem-side
//!   *files* (path contains `postmortem` — the triage lives inside the
//!   explain crate, so crate-name side detection cannot see it). The
//!   post-mortem triage taxonomy is an exhaustive wildcard-free match,
//!   and this direction is what keeps it so: a new flight-recorder or
//!   watchdog variant must be classified there, not just in `agp
//!   explain`.
//!
//! Diagnostics anchor at the variant's definition site, where the fix
//! (emit it, handle it, triage it, or retire it) is decided.

use std::collections::BTreeSet;

use crate::ast::{Arm, Block, Expr, ExprKind, File, ItemKind, Stmt};
use crate::diag::{Diag, Severity};
use crate::lexer::{Lexed, TokKind};
use crate::rules::EVENT_PROTOCOL;

/// The enum whose variants form the observability protocol.
pub const PROTOCOL_ENUM: &str = "ObsEvent";

/// One analyzed source file, as loaded by the workspace driver.
pub struct SourceUnit<'a> {
    pub crate_name: &'a str,
    pub display: &'a str,
    pub lexed: &'a Lexed,
    pub ast: &'a File,
    pub mask: &'a [bool],
}

impl SourceUnit<'_> {
    fn is_explain_side(&self) -> bool {
        self.crate_name.contains("explain")
    }

    /// The `agp postmortem` triage side. File-scoped, not crate-scoped:
    /// the triage taxonomy lives in `crates/explain/src/postmortem.rs`,
    /// inside the explain crate, so only the path distinguishes it.
    fn is_postmortem_side(&self) -> bool {
        self.display.contains("postmortem")
    }
}

/// Run the event-protocol check over a whole workspace's files.
pub fn check_event_protocol(units: &[SourceUnit]) -> Vec<Diag> {
    // Locate the protocol enum. No ObsEvent, no protocol to check.
    let mut variants: Vec<(&SourceUnit, &crate::ast::Variant)> = Vec::new();
    for u in units {
        u.ast.walk_items(&mut |item| {
            if let ItemKind::Enum { name, variants: vs } = &item.kind {
                if name == PROTOCOL_ENUM && variants.is_empty() {
                    for v in vs {
                        variants.push((u, v));
                    }
                }
            }
        });
        if !variants.is_empty() {
            break;
        }
    }
    if variants.is_empty() {
        return Vec::new();
    }

    let mut emitted = BTreeSet::new();
    for u in units {
        if u.is_explain_side() {
            continue;
        }
        collect_emissions(u, &mut emitted);
    }

    // The postmortem triage is excluded from the explain-side scan: a
    // variant named only in the triage taxonomy still never reaches the
    // explain analysis, and vice versa — the two consumer directions are
    // independent.
    let has_explain = units.iter().any(|u| u.is_explain_side());
    let mut handled = BTreeSet::new();
    for u in units
        .iter()
        .filter(|u| u.is_explain_side() && !u.is_postmortem_side())
    {
        collect_handled(u, &mut handled);
    }

    let has_postmortem = units.iter().any(|u| u.is_postmortem_side());
    let mut triaged = BTreeSet::new();
    for u in units.iter().filter(|u| u.is_postmortem_side()) {
        collect_handled(u, &mut triaged);
    }

    let mut out = Vec::new();
    for (u, v) in &variants {
        if u.mask.get(v.tok).copied().unwrap_or(false) {
            continue;
        }
        let (line, col) = u
            .lexed
            .toks
            .get(v.tok)
            .map(|t| (t.line, t.col))
            .unwrap_or((v.span.line, v.span.col));
        if !emitted.contains(&v.name) {
            out.push(Diag {
                file: u.display.to_string(),
                line,
                col,
                id: EVENT_PROTOCOL,
                severity: Severity::Error,
                message: format!(
                    "`{PROTOCOL_ENUM}::{}` is never emitted anywhere in the workspace: dead \
                     protocol surface that every consumer still pays a match arm for",
                    v.name
                ),
                suggestion: "emit it from the subsystem it describes, or retire the variant \
                             (and its consumers) in the same change"
                    .to_string(),
            });
        }
        if has_explain && !handled.contains(&v.name) {
            out.push(Diag {
                file: u.display.to_string(),
                line,
                col,
                id: EVENT_PROTOCOL,
                severity: Severity::Error,
                message: format!(
                    "`{PROTOCOL_ENUM}::{}` is not named anywhere in the explain-side crates, \
                     so it can only be reaching a wildcard arm — the analysis never sees it",
                    v.name
                ),
                suggestion: "handle the variant explicitly in the explain pass (even an \
                             intentional ignore should name it) so new telemetry cannot \
                             silently vanish"
                    .to_string(),
            });
        }
        if has_postmortem && !triaged.contains(&v.name) {
            out.push(Diag {
                file: u.display.to_string(),
                line,
                col,
                id: EVENT_PROTOCOL,
                severity: Severity::Error,
                message: format!(
                    "`{PROTOCOL_ENUM}::{}` is not named anywhere in the postmortem triage, \
                     so an incident window containing it cannot be classified — the \
                     `agp postmortem` report would miscount its subsystem",
                    v.name
                ),
                suggestion: "name the variant in the postmortem triage taxonomy \
                             (`triage_class` keeps an exhaustive wildcard-free match \
                             precisely so this cannot rot)"
                    .to_string(),
            });
        }
    }
    out.sort_by_key(|d| (d.line, d.col, d.message.clone()));
    out
}

/// Record every variant of [`PROTOCOL_ENUM`] constructed in `u`'s live
/// (non-test) code.
fn collect_emissions(u: &SourceUnit, out: &mut BTreeSet<String>) {
    u.ast.walk_items(&mut |item| {
        if let ItemKind::Fn(f) = &item.kind {
            if let Some(body) = &f.body {
                scan_block(body, u.mask, out);
            }
        }
    });
}

fn scan_block(b: &Block, mask: &[bool], out: &mut BTreeSet<String>) {
    for s in &b.stmts {
        match s {
            Stmt::Let { init: Some(e), .. } => scan_expr(e, mask, out),
            Stmt::Expr(e) => scan_expr(e, mask, out),
            Stmt::Item(item) => {
                if let ItemKind::Fn(f) = &item.kind {
                    if let Some(body) = &f.body {
                        scan_block(body, mask, out);
                    }
                }
            }
            _ => {}
        }
    }
}

/// A path whose second-to-last segment is the protocol enum names a
/// variant: `ObsEvent::V`, `obs::ObsEvent::V`, …
fn variant_of(segs: &[String]) -> Option<&String> {
    if segs.len() >= 2 && segs[segs.len() - 2] == PROTOCOL_ENUM {
        segs.last()
    } else {
        None
    }
}

fn scan_expr(e: &Expr, mask: &[bool], out: &mut BTreeSet<String>) {
    if !mask.get(e.tok).copied().unwrap_or(false) {
        let named = match &e.kind {
            ExprKind::StructLit { path, .. } | ExprKind::Path(path) => variant_of(path),
            ExprKind::Call { callee, .. } => match &callee.kind {
                ExprKind::Path(segs) => variant_of(segs),
                _ => None,
            },
            _ => None,
        };
        if let Some(v) = named {
            out.insert(v.clone());
        }
    }
    // Recurse into every sub-expression and owned block.
    match &e.kind {
        ExprKind::MethodCall { recv, args, .. } => {
            scan_expr(recv, mask, out);
            for a in args {
                scan_expr(a, mask, out);
            }
        }
        ExprKind::Call { callee, args } => {
            scan_expr(callee, mask, out);
            for a in args {
                scan_expr(a, mask, out);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            scan_expr(lhs, mask, out);
            scan_expr(rhs, mask, out);
        }
        ExprKind::Field { recv, .. } => scan_expr(recv, mask, out),
        ExprKind::Index { recv, index } => {
            scan_expr(recv, mask, out);
            scan_expr(index, mask, out);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Ref { expr, .. }
        | ExprKind::Try(expr)
        | ExprKind::Cast { expr, .. } => scan_expr(expr, mask, out),
        ExprKind::For { iter, body, .. } => {
            scan_expr(iter, mask, out);
            scan_block(body, mask, out);
        }
        ExprKind::While { cond, body } => {
            scan_expr(cond, mask, out);
            scan_block(body, mask, out);
        }
        ExprKind::Loop { body } => scan_block(body, mask, out),
        ExprKind::If { cond, then, els } => {
            scan_expr(cond, mask, out);
            scan_block(then, mask, out);
            if let Some(els) = els {
                scan_expr(els, mask, out);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            scan_expr(scrutinee, mask, out);
            for Arm { guard, body, .. } in arms {
                if let Some(g) = guard {
                    scan_expr(g, mask, out);
                }
                scan_expr(body, mask, out);
            }
        }
        ExprKind::Closure { body, .. } => scan_expr(body, mask, out),
        ExprKind::StructLit { fields, .. } => {
            for (_, v) in fields {
                scan_expr(v, mask, out);
            }
        }
        ExprKind::Macro { args, .. } | ExprKind::Tuple(args) | ExprKind::Array(args) => {
            for a in args {
                scan_expr(a, mask, out);
            }
        }
        ExprKind::Return(Some(v)) => scan_expr(v, mask, out),
        ExprKind::Range { lo, hi } => {
            if let Some(lo) = lo {
                scan_expr(lo, mask, out);
            }
            if let Some(hi) = hi {
                scan_expr(hi, mask, out);
            }
        }
        ExprKind::Block(b) => scan_block(b, mask, out),
        ExprKind::Lit(_)
        | ExprKind::Path(_)
        | ExprKind::Return(None)
        | ExprKind::Break
        | ExprKind::Continue
        | ExprKind::Unknown => {}
    }
}

/// Record every `ObsEvent::V` token sequence in `u`'s live code —
/// patterns included, which is exactly the point: a handled variant
/// spells its name somewhere.
fn collect_handled(u: &SourceUnit, out: &mut BTreeSet<String>) {
    let toks = &u.lexed.toks;
    for i in 0..toks.len() {
        if u.mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if toks[i].kind == TokKind::Ident && toks[i].text == PROTOCOL_ENUM {
            let colon = |j: usize| {
                toks.get(j)
                    .is_some_and(|t| t.kind == TokKind::Punct && t.text == ":")
            };
            if colon(i + 1) && colon(i + 2) {
                if let Some(v) = toks.get(i + 3) {
                    if v.kind == TokKind::Ident {
                        out.insert(v.text.clone());
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::rules::test_mask;

    struct Owned {
        crate_name: String,
        display: String,
        lexed: Lexed,
        ast: File,
        mask: Vec<bool>,
    }

    fn load(crate_name: &str, display: &str, src: &str) -> Owned {
        let lexed = lex(src);
        let (ast, issues) = parse(&lexed.toks);
        assert!(issues.is_empty(), "{issues:?}");
        let mask = test_mask(&lexed.toks);
        Owned {
            crate_name: crate_name.into(),
            display: display.into(),
            lexed,
            ast,
            mask,
        }
    }

    fn run(files: &[Owned]) -> Vec<Diag> {
        let units: Vec<SourceUnit> = files
            .iter()
            .map(|o| SourceUnit {
                crate_name: &o.crate_name,
                display: &o.display,
                lexed: &o.lexed,
                ast: &o.ast,
                mask: &o.mask,
            })
            .collect();
        check_event_protocol(&units)
    }

    const DEF: &str = "pub enum ObsEvent { PageIn { frame: u64 }, PageOut { frame: u64 }, Tick }";

    #[test]
    fn clean_protocol_has_no_findings() {
        let files = [
            load("agp-obs", "obs/src/event.rs", DEF),
            load(
                "agp-sim",
                "sim/src/lib.rs",
                "fn f(b: &mut Bus) { b.emit(ObsEvent::PageIn { frame: 1 }); \
                 b.emit(ObsEvent::PageOut { frame: 2 }); b.emit(ObsEvent::Tick); }",
            ),
            load(
                "agp-explain",
                "explain/src/lib.rs",
                "fn g(e: &ObsEvent) { match e { ObsEvent::PageIn { .. } => {}, \
                 ObsEvent::PageOut { .. } => {}, ObsEvent::Tick => {} } }",
            ),
        ];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn unemitted_variant_is_flagged() {
        let files = [
            load("agp-obs", "obs/src/event.rs", DEF),
            load(
                "agp-sim",
                "sim/src/lib.rs",
                "fn f(b: &mut Bus) { b.emit(ObsEvent::PageIn { frame: 1 }); b.emit(ObsEvent::Tick); }",
            ),
            load(
                "agp-explain",
                "explain/src/lib.rs",
                "fn g(e: &ObsEvent) { match e { ObsEvent::PageIn { .. } => {}, \
                 ObsEvent::PageOut { .. } => {}, ObsEvent::Tick => {} } }",
            ),
        ];
        let got = run(&files);
        assert_eq!(got.len(), 1, "{got:#?}");
        assert_eq!(got[0].id, EVENT_PROTOCOL);
        assert!(got[0].message.contains("PageOut"));
        assert!(got[0].message.contains("never emitted"));
        assert_eq!(got[0].file, "obs/src/event.rs");
    }

    #[test]
    fn wildcard_funnel_is_flagged() {
        let files = [
            load("agp-obs", "obs/src/event.rs", DEF),
            load(
                "agp-sim",
                "sim/src/lib.rs",
                "fn f(b: &mut Bus) { b.emit(ObsEvent::PageIn { frame: 1 }); \
                 b.emit(ObsEvent::PageOut { frame: 2 }); b.emit(ObsEvent::Tick); }",
            ),
            load(
                "agp-explain",
                "explain/src/lib.rs",
                "fn g(e: &ObsEvent) { match e { ObsEvent::PageIn { .. } => {}, _ => {} } }",
            ),
        ];
        let got = run(&files);
        assert_eq!(got.len(), 2, "{got:#?}");
        assert!(got.iter().all(|d| d.message.contains("wildcard")));
        let named: Vec<_> = got.iter().map(|d| d.message.clone()).collect();
        assert!(named.iter().any(|m| m.contains("PageOut")));
        assert!(named.iter().any(|m| m.contains("Tick")));
    }

    #[test]
    fn matching_is_not_emitting() {
        // agp-sim only *matches* PageOut; nobody constructs it.
        let files = [
            load("agp-obs", "obs/src/event.rs", DEF),
            load(
                "agp-sim",
                "sim/src/lib.rs",
                "fn f(b: &mut Bus, e: &ObsEvent) { b.emit(ObsEvent::PageIn { frame: 1 }); \
                 b.emit(ObsEvent::Tick); \
                 match e { ObsEvent::PageOut { .. } => {}, _ => {} } }",
            ),
            load(
                "agp-explain",
                "explain/src/lib.rs",
                "fn g(e: &ObsEvent) { match e { ObsEvent::PageIn { .. } => {}, \
                 ObsEvent::PageOut { .. } => {}, ObsEvent::Tick => {} } }",
            ),
        ];
        let got = run(&files);
        assert_eq!(got.len(), 1, "{got:#?}");
        assert!(got[0].message.contains("PageOut"));
        assert!(got[0].message.contains("never emitted"));
    }

    #[test]
    fn explain_side_emissions_do_not_count() {
        // Only agp-explain constructs PageOut (e.g. synthesizing events in
        // its own pipeline) — that is not the simulator emitting it.
        let files = [
            load("agp-obs", "obs/src/event.rs", DEF),
            load(
                "agp-sim",
                "sim/src/lib.rs",
                "fn f(b: &mut Bus) { b.emit(ObsEvent::PageIn { frame: 1 }); b.emit(ObsEvent::Tick); }",
            ),
            load(
                "agp-explain",
                "explain/src/lib.rs",
                "fn g() -> ObsEvent { ObsEvent::PageOut { frame: 9 } }\n\
                 fn h(e: &ObsEvent) { match e { ObsEvent::PageIn { .. } => {}, \
                 ObsEvent::PageOut { .. } => {}, ObsEvent::Tick => {} } }",
            ),
        ];
        let got = run(&files);
        assert_eq!(got.len(), 1, "{got:#?}");
        assert!(got[0].message.contains("never emitted"));
    }

    #[test]
    fn untriaged_variant_is_flagged_when_a_postmortem_side_exists() {
        let files = [
            load("agp-obs", "obs/src/event.rs", DEF),
            load(
                "agp-sim",
                "sim/src/lib.rs",
                "fn f(b: &mut Bus) { b.emit(ObsEvent::PageIn { frame: 1 }); \
                 b.emit(ObsEvent::PageOut { frame: 2 }); b.emit(ObsEvent::Tick); }",
            ),
            load(
                "agp-explain",
                "explain/src/lib.rs",
                "fn g(e: &ObsEvent) { match e { ObsEvent::PageIn { .. } => {}, \
                 ObsEvent::PageOut { .. } => {}, ObsEvent::Tick => {} } }",
            ),
            // The triage names PageIn and PageOut but funnels Tick — the
            // postmortem direction fires even though explain handles it.
            load(
                "agp-explain",
                "explain/src/postmortem.rs",
                "fn triage(e: &ObsEvent) -> u32 { match e { \
                 ObsEvent::PageIn { .. } => 1, ObsEvent::PageOut { .. } => 2, _ => 0 } }",
            ),
        ];
        let got = run(&files);
        assert_eq!(got.len(), 1, "{got:#?}");
        assert_eq!(got[0].id, EVENT_PROTOCOL);
        assert!(got[0].message.contains("Tick"));
        assert!(got[0].message.contains("postmortem triage"));
        assert_eq!(got[0].file, "obs/src/event.rs");
    }

    #[test]
    fn exhaustive_triage_satisfies_the_postmortem_direction() {
        let files = [
            load("agp-obs", "obs/src/event.rs", DEF),
            load(
                "agp-sim",
                "sim/src/lib.rs",
                "fn f(b: &mut Bus) { b.emit(ObsEvent::PageIn { frame: 1 }); \
                 b.emit(ObsEvent::PageOut { frame: 2 }); b.emit(ObsEvent::Tick); }",
            ),
            load(
                "agp-explain",
                "explain/src/lib.rs",
                "fn g(e: &ObsEvent) { match e { ObsEvent::PageIn { .. } => {}, \
                 ObsEvent::PageOut { .. } => {}, ObsEvent::Tick => {} } }",
            ),
            load(
                "agp-explain",
                "explain/src/postmortem.rs",
                "fn triage(e: &ObsEvent) -> u32 { match e { \
                 ObsEvent::PageIn { .. } => 1, ObsEvent::PageOut { .. } => 2, \
                 ObsEvent::Tick => 3 } }",
            ),
        ];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn no_postmortem_side_means_no_triage_findings() {
        // Same clean three-crate layout, no postmortem file anywhere:
        // the triage direction must not fire vacuously.
        let files = [
            load("agp-obs", "obs/src/event.rs", DEF),
            load(
                "agp-sim",
                "sim/src/lib.rs",
                "fn f(b: &mut Bus) { b.emit(ObsEvent::PageIn { frame: 1 }); \
                 b.emit(ObsEvent::PageOut { frame: 2 }); b.emit(ObsEvent::Tick); }",
            ),
            load(
                "agp-explain",
                "explain/src/lib.rs",
                "fn g(e: &ObsEvent) { match e { ObsEvent::PageIn { .. } => {}, \
                 ObsEvent::PageOut { .. } => {}, ObsEvent::Tick => {} } }",
            ),
        ];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn no_protocol_enum_means_no_findings() {
        let files = [load(
            "agp-sim",
            "sim/src/lib.rs",
            "pub enum Other { A, B }\nfn f() -> Other { Other::A }",
        )];
        assert!(run(&files).is_empty());
    }

    #[test]
    fn test_only_emission_does_not_count() {
        let files = [
            load("agp-obs", "obs/src/event.rs", DEF),
            load(
                "agp-sim",
                "sim/src/lib.rs",
                "fn f(b: &mut Bus) { b.emit(ObsEvent::PageIn { frame: 1 }); b.emit(ObsEvent::Tick); }\n\
                 #[cfg(test)]\nmod tests { fn t() -> ObsEvent { ObsEvent::PageOut { frame: 1 } } }",
            ),
            load(
                "agp-explain",
                "explain/src/lib.rs",
                "fn g(e: &ObsEvent) { match e { ObsEvent::PageIn { .. } => {}, \
                 ObsEvent::PageOut { .. } => {}, ObsEvent::Tick => {} } }",
            ),
        ];
        let got = run(&files);
        assert_eq!(got.len(), 1, "{got:#?}");
        assert!(got[0].message.contains("PageOut"));
    }
}
