//! # agp-lint — determinism & robustness static analysis for the workspace
//!
//! The simulator's headline guarantee is byte-identical replay: the same
//! seed must produce the same `--events` JSONL, the same metrics, the same
//! makespan, on every platform, forever. That guarantee dies quietly — one
//! `HashMap` iteration in a hot path, one `Instant::now()` folded into a
//! latency, one `thread_rng()` — and nothing in `cargo test` notices until
//! a paper figure stops reproducing. `agp-lint` is the mechanical gate:
//! it scans every workspace crate's sources and reports structured
//! diagnostics for six hazard classes (see [`rules`]).
//!
//! ## Design notes
//!
//! The workspace builds fully offline, so the linter cannot depend on `syn`
//! or `serde`; it runs on a hand-rolled token scanner ([`lexer`]) that is
//! accurate for these lints (comments, strings, raw strings, char-vs-
//! lifetime, `#[cfg(test)]` item exclusion). Output rendering ([`diag`])
//! and `Cargo.toml` metadata parsing ([`config`]) are equally
//! dependency-free.
//!
//! ## Suppression
//!
//! * Site-level: `// agp-lint: allow(<id>): <reason>` on the offending line
//!   or the line directly above.
//! * Crate-level: `[package.metadata.agp-lint] allow = ["<id>", …]`.
//!
//! Run as `cargo run -p agp-lint -- [--format json] [--deny-warnings]`.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use diag::{render_json, Diag, Severity};

/// Crates whose `allow = ["wall-clock"]` manifest metadata is honoured:
/// `agp-perf` is the self-profiler (the host clock is its product),
/// `agp-cli` and `agp-bench` report real elapsed runtime to the
/// operator, and `agp-lint` necessarily spells the hazardous
/// identifiers out in its own rule tables. A `wall-clock` allow claimed
/// by any other crate is ignored, so the lint still fires there —
/// keeping `Instant::now` structurally impossible to smuggle into
/// simulation crates by editing only their own manifest.
pub const WALL_CLOCK_SANCTIONED: &[&str] = &["agp-bench", "agp-cli", "agp-lint", "agp-perf"];

/// The crate-level allow list that actually applies to `crate_name`:
/// every claimed id except `wall-clock`, which passes through only for
/// [`WALL_CLOCK_SANCTIONED`] crates. Site-level suppressions are
/// unaffected (they carry a written reason at the offending line).
pub fn effective_allow(crate_name: &str, allow: &[String]) -> Vec<String> {
    allow
        .iter()
        .filter(|id| {
            id.as_str() != rules::WALL_CLOCK || WALL_CLOCK_SANCTIONED.contains(&crate_name)
        })
        .cloned()
        .collect()
}

/// Lint one source file with an explicit crate-level allow list.
///
/// `display` is the path recorded in diagnostics (usually root-relative).
pub fn lint_file(path: &Path, display: &str, crate_allow: &[String]) -> io::Result<Vec<Diag>> {
    let src = fs::read_to_string(path)?;
    Ok(rules::lint_tokens(display, &lexer::lex(&src), crate_allow))
}

/// Collect all `.rs` files under `dir`, depth-first in sorted order so the
/// report is stable across filesystems.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// One lintable package: its manifest config plus its `src/` root.
#[derive(Debug)]
struct Package {
    dir: PathBuf,
    cfg: config::CrateConfig,
}

/// Discover workspace packages: the root package plus every `crates/*`
/// member, identified by a `Cargo.toml` next to a `src/` directory.
fn discover_packages(root: &Path) -> io::Result<Vec<Package>> {
    let mut dirs = vec![root.to_path_buf()];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        dirs.extend(members);
    }
    let mut out = Vec::new();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() || !dir.join("src").is_dir() {
            continue;
        }
        let cfg = config::parse_manifest(&fs::read_to_string(&manifest)?);
        out.push(Package { dir, cfg });
    }
    Ok(out)
}

fn display_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint every package's `src/` tree under `root` (library, binary, and
/// module sources; `tests/`, `benches/`, `examples/` and fixtures are out
/// of scope — they are allowed to use host facilities).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diag>> {
    let mut diags = Vec::new();
    for pkg in discover_packages(root)? {
        let allow = effective_allow(&pkg.cfg.name, &pkg.cfg.allow);
        let mut files = Vec::new();
        walk_rs(&pkg.dir.join("src"), &mut files)?;
        for f in files {
            let display = display_path(root, &f);
            diags.extend(lint_file(&f, &display, &allow)?);
        }
    }
    diags.sort_by(|a, b| {
        (a.file.clone(), a.line, a.col, a.id).cmp(&(b.file.clone(), b.line, b.col, b.id))
    });
    Ok(diags)
}

/// Lint one package directory (a `Cargo.toml` next to `src/`), applying
/// the same crate-level allow + sanction rules as [`lint_workspace`].
/// Diagnostics use package-relative paths. Used by the fixture tests to
/// pin the sanction behaviour on packages outside the workspace.
pub fn lint_package_dir(dir: &Path) -> io::Result<Vec<Diag>> {
    let cfg = config::parse_manifest(&fs::read_to_string(dir.join("Cargo.toml"))?);
    let allow = effective_allow(&cfg.name, &cfg.allow);
    let mut files = Vec::new();
    walk_rs(&dir.join("src"), &mut files)?;
    let mut diags = Vec::new();
    for f in files {
        let display = display_path(dir, &f);
        diags.extend(lint_file(&f, &display, &allow)?);
    }
    diags.sort_by(|a, b| {
        (a.file.clone(), a.line, a.col, a.id).cmp(&(b.file.clone(), b.line, b.col, b.id))
    });
    Ok(diags)
}

/// Lint explicitly named files/directories. No crate config applies — every
/// finding in the given paths is reported (site suppressions still work).
pub fn lint_paths(paths: &[PathBuf]) -> io::Result<Vec<Diag>> {
    let mut diags = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut files = Vec::new();
            walk_rs(p, &mut files)?;
            for f in files {
                let display = f.to_string_lossy().replace('\\', "/");
                diags.extend(lint_file(&f, &display, &[])?);
            }
        } else {
            let display = p.to_string_lossy().replace('\\', "/");
            diags.extend(lint_file(p, &display, &[])?);
        }
    }
    Ok(diags)
}

/// Decide the process exit code for a finished report.
///
/// 0 = clean (or warnings without `--deny-warnings`), 1 = findings fail.
pub fn exit_code(diags: &[Diag], deny_warnings: bool) -> i32 {
    let errors = diags.iter().any(|d| d.severity == Severity::Error);
    let warns = diags.iter().any(|d| d.severity == Severity::Warn);
    if errors || (deny_warnings && warns) {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_allow_passes_only_for_sanctioned_crates() {
        let claimed = vec!["wall-clock".to_string(), "panic-site".to_string()];
        for name in WALL_CLOCK_SANCTIONED {
            assert_eq!(effective_allow(name, &claimed), claimed, "{name}");
        }
        assert_eq!(
            effective_allow("agp-mem", &claimed),
            vec!["panic-site".to_string()],
            "an unsanctioned crate keeps its other allows but not wall-clock"
        );
        assert!(effective_allow("agp-mem", &[]).is_empty());
    }

    #[test]
    fn exit_code_policy() {
        let warn = Diag {
            file: "f".into(),
            line: 1,
            col: 1,
            id: rules::PANIC_SITE,
            severity: Severity::Warn,
            message: String::new(),
            suggestion: String::new(),
        };
        let mut err = warn.clone();
        err.severity = Severity::Error;
        assert_eq!(exit_code(&[], false), 0);
        assert_eq!(exit_code(&[warn.clone()], false), 0);
        assert_eq!(exit_code(&[warn.clone()], true), 1);
        assert_eq!(exit_code(&[err], false), 1);
    }
}
