//! # agp-lint — determinism & robustness static analysis for the workspace
//!
//! The simulator's headline guarantee is byte-identical replay: the same
//! seed must produce the same `--events` JSONL, the same metrics, the same
//! makespan, on every platform, forever. That guarantee dies quietly — one
//! `HashMap` iteration in a hot path, one `Instant::now()` folded into a
//! latency, one `thread_rng()` — and nothing in `cargo test` notices until
//! a paper figure stops reproducing. `agp-lint` is the mechanical gate:
//! it loads the whole workspace in one run and reports structured
//! diagnostics for thirteen hazard classes (see [`rules`] for the
//! registry).
//!
//! ## Architecture (v2)
//!
//! The workspace builds fully offline, so the linter cannot depend on
//! `syn` or `serde`; the whole pipeline is hand-rolled:
//!
//! 1. [`lexer`] — token scanner with byte-accurate offsets (comments,
//!    strings, raw strings, char-vs-lifetime, byte literals).
//! 2. [`parser`] — tolerant recursive-descent parser producing the
//!    lightweight AST in [`ast`]; every workspace source parses with zero
//!    issues (pinned by an integration test).
//! 3. [`symbols`] — per-crate symbol tables (aliases, struct fields, enum
//!    variants, fn returns) joined into a cross-crate [`symbols::Workspace`].
//! 4. Rule passes: token rules in [`rules`], AST dataflow and parallelism
//!    rules in [`semantic`], and the whole-workspace event-protocol check
//!    in [`protocol`].
//!
//! Output rendering is [`diag`] (text/JSON) and [`sarif`] (SARIF 2.1.0
//! for CI code-scanning); [`explain`] documents every rule for
//! `--explain <id>`; `Cargo.toml` metadata parsing is [`config`].
//!
//! ## Suppression
//!
//! * Site-level: `// agp-lint: allow(<id>): <reason>` on the offending line
//!   or the line directly above.
//! * Crate-level: `[package.metadata.agp-lint] allow = ["<id>", …]`.
//!
//! Run as `cargo run -p agp-lint -- [--format json|sarif] [--sarif <path>]
//! [--deny-warnings] [--explain <rule-id>]`.

#![forbid(unsafe_code)]

pub mod ast;
pub mod config;
pub mod diag;
pub mod explain;
pub mod lexer;
pub mod parser;
pub mod protocol;
pub mod rules;
pub mod sarif;
pub mod semantic;
pub mod symbols;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use diag::{render_json, Diag, Severity};
pub use sarif::render_sarif;

/// Crates whose `allow = ["wall-clock"]` manifest metadata is honoured:
/// `agp-perf` is the self-profiler (the host clock is its product),
/// `agp-cli` and `agp-bench` report real elapsed runtime to the
/// operator, and `agp-lint` necessarily spells the hazardous
/// identifiers out in its own rule tables. A `wall-clock` allow claimed
/// by any other crate is ignored, so the lint still fires there —
/// keeping `Instant::now` structurally impossible to smuggle into
/// simulation crates by editing only their own manifest.
pub const WALL_CLOCK_SANCTIONED: &[&str] = &["agp-bench", "agp-cli", "agp-lint", "agp-perf"];

/// The crate-level allow list that actually applies to `crate_name`:
/// every claimed id except `wall-clock`, which passes through only for
/// [`WALL_CLOCK_SANCTIONED`] crates. Site-level suppressions are
/// unaffected (they carry a written reason at the offending line).
pub fn effective_allow(crate_name: &str, allow: &[String]) -> Vec<String> {
    allow
        .iter()
        .filter(|id| {
            id.as_str() != rules::WALL_CLOCK || WALL_CLOCK_SANCTIONED.contains(&crate_name)
        })
        .cloned()
        .collect()
}

/// One fully analyzed source file: lexed, parsed, and test-masked, with
/// the crate context its findings are judged under.
struct Analyzed {
    crate_name: String,
    allow: Vec<String>,
    display: String,
    lexed: lexer::Lexed,
    ast: ast::File,
    mask: Vec<bool>,
}

fn load_file(
    path: &Path,
    display: String,
    crate_name: &str,
    allow: &[String],
) -> io::Result<Analyzed> {
    let src = fs::read_to_string(path)?;
    let lexed = lexer::lex(&src);
    // The parser is tolerant; rule passes run on whatever it recovered.
    // (A dedicated integration test pins zero issues on workspace code.)
    let (ast, _issues) = parser::parse(&lexed.toks);
    let mask = rules::test_mask(&lexed.toks);
    Ok(Analyzed {
        crate_name: crate_name.to_string(),
        allow: allow.to_vec(),
        display,
        lexed,
        ast,
        mask,
    })
}

/// Run the per-file rule passes (token + semantic) over every analyzed
/// file, applying each file's suppressions.
fn run_rules(files: &[Analyzed], ws: &symbols::Workspace) -> Vec<Diag> {
    let fallback = symbols::CrateSymbols::default();
    let mut diags = Vec::new();
    for f in files {
        let home = ws.crates.get(&f.crate_name).unwrap_or(&fallback);
        let mut out = rules::token_rules(&f.display, &f.lexed, &f.mask);
        out.extend(semantic::lint_semantic(
            &f.display,
            &f.lexed,
            &f.ast,
            &f.mask,
            ws,
            home,
            &f.crate_name,
        ));
        rules::apply_suppressions(&mut out, &f.lexed, &f.allow);
        diags.extend(out);
    }
    diags
}

/// Run the whole-workspace event-protocol pass, honouring the anchoring
/// file's site suppressions and crate allow list.
fn run_protocol(files: &[Analyzed]) -> Vec<Diag> {
    let units: Vec<protocol::SourceUnit> = files
        .iter()
        .map(|f| protocol::SourceUnit {
            crate_name: &f.crate_name,
            display: &f.display,
            lexed: &f.lexed,
            ast: &f.ast,
            mask: &f.mask,
        })
        .collect();
    let mut proto = protocol::check_event_protocol(&units);
    proto.retain(|d| {
        let Some(f) = files.iter().find(|f| f.display == d.file) else {
            return true;
        };
        let mut one = vec![d.clone()];
        rules::apply_suppressions(&mut one, &f.lexed, &f.allow);
        !one.is_empty()
    });
    proto
}

fn sort_report(diags: &mut [Diag]) {
    diags.sort_by(|a, b| {
        (a.file.clone(), a.line, a.col, a.id).cmp(&(b.file.clone(), b.line, b.col, b.id))
    });
}

/// Lint one source file with an explicit crate-level allow list.
///
/// The file is treated as a loose source: its own items form the symbol
/// table (so `type`-alias and field resolution work within the file), no
/// crate name applies (the `par-*` family stays off), and the
/// cross-crate protocol check does not run.
///
/// `display` is the path recorded in diagnostics (usually root-relative).
pub fn lint_file(path: &Path, display: &str, crate_allow: &[String]) -> io::Result<Vec<Diag>> {
    let a = load_file(path, display.to_string(), "", crate_allow)?;
    let mut syms = symbols::CrateSymbols::default();
    syms.add_file(&a.ast);
    let mut ws = symbols::Workspace::default();
    ws.insert(syms);
    let files = [a];
    let mut diags = run_rules(&files, &ws);
    sort_report(&mut diags);
    Ok(diags)
}

/// Collect all `.rs` files under `dir`, depth-first in sorted order so the
/// report is stable across filesystems.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// One lintable package: its manifest config plus its `src/` root.
#[derive(Debug)]
struct Package {
    dir: PathBuf,
    cfg: config::CrateConfig,
}

/// Discover workspace packages: the root package plus every `crates/*`
/// member, identified by a `Cargo.toml` next to a `src/` directory.
fn discover_packages(root: &Path) -> io::Result<Vec<Package>> {
    let mut dirs = vec![root.to_path_buf()];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        dirs.extend(members);
    }
    let mut out = Vec::new();
    for dir in dirs {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() || !dir.join("src").is_dir() {
            continue;
        }
        let cfg = config::parse_manifest(&fs::read_to_string(&manifest)?);
        out.push(Package { dir, cfg });
    }
    Ok(out)
}

fn display_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint every package's `src/` tree under `root` (library, binary, and
/// module sources; `tests/`, `benches/`, `examples/` and fixtures are out
/// of scope — they are allowed to use host facilities).
///
/// This is the full cross-crate analysis: every package is lexed and
/// parsed first, the joined symbol table lets the semantic rules resolve
/// names across crate boundaries, and the event-protocol pass checks the
/// `ObsEvent` contract over the whole workspace at once.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diag>> {
    let mut files: Vec<Analyzed> = Vec::new();
    let mut ws = symbols::Workspace::default();
    for pkg in discover_packages(root)? {
        let allow = effective_allow(&pkg.cfg.name, &pkg.cfg.allow);
        let mut paths = Vec::new();
        walk_rs(&pkg.dir.join("src"), &mut paths)?;
        let mut syms = symbols::CrateSymbols {
            name: pkg.cfg.name.clone(),
            ..Default::default()
        };
        for f in paths {
            let display = display_path(root, &f);
            let a = load_file(&f, display, &pkg.cfg.name, &allow)?;
            syms.add_file(&a.ast);
            files.push(a);
        }
        ws.insert(syms);
    }
    let mut diags = run_rules(&files, &ws);
    diags.extend(run_protocol(&files));
    sort_report(&mut diags);
    Ok(diags)
}

/// Lint one package directory (a `Cargo.toml` next to `src/`), applying
/// the same crate-level allow + sanction rules as [`lint_workspace`].
/// Diagnostics use package-relative paths. Used by the fixture tests to
/// pin the sanction behaviour on packages outside the workspace.
///
/// The package's own files form the symbol table and its manifest name
/// gates the `par-*` family; the cross-crate protocol pass needs a whole
/// workspace and does not run here.
pub fn lint_package_dir(dir: &Path) -> io::Result<Vec<Diag>> {
    let cfg = config::parse_manifest(&fs::read_to_string(dir.join("Cargo.toml"))?);
    let allow = effective_allow(&cfg.name, &cfg.allow);
    let mut paths = Vec::new();
    walk_rs(&dir.join("src"), &mut paths)?;
    let mut files = Vec::new();
    let mut syms = symbols::CrateSymbols {
        name: cfg.name.clone(),
        ..Default::default()
    };
    for f in paths {
        let display = display_path(dir, &f);
        let a = load_file(&f, display, &cfg.name, &allow)?;
        syms.add_file(&a.ast);
        files.push(a);
    }
    let mut ws = symbols::Workspace::default();
    ws.insert(syms);
    let mut diags = run_rules(&files, &ws);
    sort_report(&mut diags);
    Ok(diags)
}

/// Lint explicitly named files/directories. No crate config applies — every
/// finding in the given paths is reported (site suppressions still work).
pub fn lint_paths(paths: &[PathBuf]) -> io::Result<Vec<Diag>> {
    let mut diags = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut files = Vec::new();
            walk_rs(p, &mut files)?;
            for f in files {
                let display = f.to_string_lossy().replace('\\', "/");
                diags.extend(lint_file(&f, &display, &[])?);
            }
        } else {
            let display = p.to_string_lossy().replace('\\', "/");
            diags.extend(lint_file(p, &display, &[])?);
        }
    }
    Ok(diags)
}

/// Decide the process exit code for a finished report.
///
/// 0 = clean (or warnings without `--deny-warnings`), 1 = findings fail.
pub fn exit_code(diags: &[Diag], deny_warnings: bool) -> i32 {
    let errors = diags.iter().any(|d| d.severity == Severity::Error);
    let warns = diags.iter().any(|d| d.severity == Severity::Warn);
    if errors || (deny_warnings && warns) {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_allow_passes_only_for_sanctioned_crates() {
        let claimed = vec!["wall-clock".to_string(), "panic-site".to_string()];
        for name in WALL_CLOCK_SANCTIONED {
            assert_eq!(effective_allow(name, &claimed), claimed, "{name}");
        }
        assert_eq!(
            effective_allow("agp-mem", &claimed),
            vec!["panic-site".to_string()],
            "an unsanctioned crate keeps its other allows but not wall-clock"
        );
        assert!(effective_allow("agp-mem", &[]).is_empty());
    }

    #[test]
    fn exit_code_policy() {
        let warn = Diag {
            file: "f".into(),
            line: 1,
            col: 1,
            id: rules::PANIC_SITE,
            severity: Severity::Warn,
            message: String::new(),
            suggestion: String::new(),
        };
        let mut err = warn.clone();
        err.severity = Severity::Error;
        assert_eq!(exit_code(&[], false), 0);
        assert_eq!(exit_code(std::slice::from_ref(&warn), false), 0);
        assert_eq!(exit_code(std::slice::from_ref(&warn), true), 1);
        assert_eq!(exit_code(&[err], false), 1);
    }
}
