//! The token-level lint rules, plus the registry of every rule id.
//!
//! Six determinism/robustness hazard classes are matched directly over
//! the token stream from [`crate::lexer`]:
//!
//! | id                 | severity | hazard                                             |
//! |--------------------|----------|----------------------------------------------------|
//! | `hash-container`   | error    | `std` `HashMap`/`HashSet` — randomized iteration   |
//! | `wall-clock`       | error    | `Instant::now` / `SystemTime` — host-time leakage  |
//! | `unseeded-rng`     | error    | `thread_rng`/`OsRng`/entropy-seeded generators     |
//! | `float-accumulate` | warn     | float `sum`/`fold` over unordered map iterators    |
//! | `panic-site`       | warn     | `unwrap`/`expect`/`panic!` family in library code  |
//! | `io-unwrap`        | error    | `unwrap`/`expect` on a `std::fs`/`io` result       |
//!
//! The AST-level dataflow and parallelism rules live in
//! [`crate::semantic`]; the cross-crate event-protocol check lives in
//! [`crate::protocol`]. Their ids are declared here so [`ALL_IDS`] is the
//! single registry `--explain`, config validation, and the fixtures use.
//!
//! Code under `#[cfg(test)]` / `#[test]` items is excluded. A finding can
//! be silenced at the site with `// agp-lint: allow(<id>)` on the same line
//! or the line directly above, or crate-wide via
//! `[package.metadata.agp-lint] allow = [...]` (see [`crate::config`]).

use crate::diag::{Diag, Severity};
use crate::lexer::{Lexed, Tok, TokKind};

pub const HASH_CONTAINER: &str = "hash-container";
pub const WALL_CLOCK: &str = "wall-clock";
pub const UNSEEDED_RNG: &str = "unseeded-rng";
pub const FLOAT_ACCUMULATE: &str = "float-accumulate";
pub const PANIC_SITE: &str = "panic-site";
pub const IO_UNWRAP: &str = "io-unwrap";
// Determinism dataflow (AST-level, [`crate::semantic`]).
pub const NONDET_ITER: &str = "nondet-iter";
pub const SIM_TIME_ARITH: &str = "sim-time-arith";
pub const FLOAT_ACCUM_LOOP: &str = "float-accum-loop";
// Parallelism readiness (crate-gated, [`crate::semantic`]).
pub const PAR_STATIC_MUT: &str = "par-static-mut";
pub const PAR_INTERIOR_MUT: &str = "par-interior-mut";
pub const PAR_THREAD_LOCAL: &str = "par-thread-local";
// Cross-crate event-protocol exhaustiveness ([`crate::protocol`]).
pub const EVENT_PROTOCOL: &str = "event-protocol";

/// All lint ids, for `--explain`/`--help` output and config validation.
pub const ALL_IDS: [&str; 13] = [
    HASH_CONTAINER,
    WALL_CLOCK,
    UNSEEDED_RNG,
    FLOAT_ACCUMULATE,
    PANIC_SITE,
    IO_UNWRAP,
    NONDET_ITER,
    SIM_TIME_ARITH,
    FLOAT_ACCUM_LOOP,
    PAR_STATIC_MUT,
    PAR_INTERIOR_MUT,
    PAR_THREAD_LOCAL,
    EVENT_PROTOCOL,
];

/// Rules that can fire from a single loose `.rs` file handed to
/// `lint_paths` (no crate name, no workspace context). The `par-*` family
/// needs a fan-out crate name and `event-protocol` needs the whole
/// workspace, so they are exercised by the named fixture crates instead.
pub const FILE_RULE_IDS: [&str; 9] = [
    HASH_CONTAINER,
    WALL_CLOCK,
    UNSEEDED_RNG,
    FLOAT_ACCUMULATE,
    PANIC_SITE,
    IO_UNWRAP,
    NONDET_ITER,
    SIM_TIME_ARITH,
    FLOAT_ACCUM_LOOP,
];

/// Mark tokens that belong to test-only items so rules skip them.
///
/// An item is test-only when it is preceded by an attribute containing the
/// identifier `test` and not the identifier `not` — this covers `#[test]`,
/// `#[cfg(test)]`, and `#[cfg(all(test, …))]`, while leaving
/// `#[cfg(not(test))]` linted. The item extent runs from the attribute to
/// the matching close brace of its first block (or the terminating `;` for
/// brace-less items like `mod tests;`).
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        // Outer `#[…]` or inner `#![…]` attribute.
        let mut j = i + 1;
        if j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "!" {
            j += 1;
        }
        if !(j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "[") {
            i += 1;
            continue;
        }
        // Scan to the matching `]`, noting the idents inside.
        let mut depth = 0usize;
        let mut has_test = false;
        let mut has_not = false;
        let attr_start = i;
        while j < toks.len() {
            match (&toks[j].kind, toks[j].text.as_str()) {
                (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (TokKind::Ident, "test") => has_test = true,
                (TokKind::Ident, "not") => has_not = true,
                _ => {}
            }
            j += 1;
        }
        let attr_end = j; // index of the closing `]` (or end of stream)
        if !has_test || has_not {
            i = attr_end + 1;
            continue;
        }
        // Test attribute: mask it, any stacked attributes, and the item body.
        let mut k = attr_end + 1;
        loop {
            // Skip further attributes between this one and the item.
            if k < toks.len() && toks[k].kind == TokKind::Punct && toks[k].text == "#" {
                let mut d = 0usize;
                let mut m = k + 1;
                if m < toks.len() && toks[m].text == "!" {
                    m += 1;
                }
                while m < toks.len() {
                    match toks[m].text.as_str() {
                        "[" => d += 1,
                        "]" => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    m += 1;
                }
                k = m + 1;
                continue;
            }
            break;
        }
        // Find the item extent: first `{` at depth 0 then its match, or `;`.
        let mut brace = 0i64;
        let mut saw_brace = false;
        while k < toks.len() {
            if toks[k].kind == TokKind::Punct {
                match toks[k].text.as_str() {
                    "{" => {
                        brace += 1;
                        saw_brace = true;
                    }
                    "}" => {
                        brace -= 1;
                        if saw_brace && brace == 0 {
                            break;
                        }
                    }
                    ";" if !saw_brace => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let item_end = k.min(toks.len().saturating_sub(1));
        for m in mask.iter_mut().take(item_end + 1).skip(attr_start) {
            *m = true;
        }
        i = item_end + 1;
    }
    mask
}

/// Context handed to each rule: tokens, the test mask, and the display path.
struct Ctx<'a> {
    file: &'a str,
    toks: &'a [Tok],
    mask: &'a [bool],
}

impl<'a> Ctx<'a> {
    /// Token text at `i` if it is live (not test-masked), else "".
    fn live(&self, i: usize) -> Option<&Tok> {
        if i < self.toks.len() && !self.mask[i] {
            Some(&self.toks[i])
        } else {
            None
        }
    }

    fn is_punct(&self, i: usize, p: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == p)
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        self.toks
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    }

    fn diag(
        &self,
        i: usize,
        id: &'static str,
        severity: Severity,
        message: String,
        suggestion: String,
    ) -> Diag {
        Diag {
            file: self.file.to_string(),
            line: self.toks[i].line,
            col: self.toks[i].col,
            id,
            severity,
            message,
            suggestion,
        }
    }
}

fn rule_hash_container(ctx: &Ctx, out: &mut Vec<Diag>) {
    for i in 0..ctx.toks.len() {
        let Some(t) = ctx.live(i) else { continue };
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            let alt = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(ctx.diag(
                i,
                HASH_CONTAINER,
                Severity::Error,
                format!(
                    "std::collections::{} has a randomized iteration order, which breaks \
                     byte-identical replay of simulation runs",
                    t.text
                ),
                format!("use {alt} (or an index-ordered map) so iteration order is deterministic"),
            ));
        }
    }
}

fn rule_wall_clock(ctx: &Ctx, out: &mut Vec<Diag>) {
    for i in 0..ctx.toks.len() {
        let Some(t) = ctx.live(i) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "SystemTime" => true,
            "Instant" => {
                ctx.is_punct(i + 1, ":") && ctx.is_punct(i + 2, ":") && ctx.is_ident(i + 3, "now")
            }
            _ => false,
        };
        if hit {
            out.push(
                ctx.diag(
                    i,
                    WALL_CLOCK,
                    Severity::Error,
                    format!(
                        "`{}` reads the host clock; simulation logic must derive all time from \
                     SimTime so runs replay identically",
                        t.text
                    ),
                    "use agp_sim::SimTime / SimDur — only the sanctioned profiler/CLI/bench \
                 crates (agp_lint::WALL_CLOCK_SANCTIONED) may claim the wall-clock allow"
                        .to_string(),
                ),
            );
        }
    }
}

fn rule_unseeded_rng(ctx: &Ctx, out: &mut Vec<Diag>) {
    for i in 0..ctx.toks.len() {
        let Some(t) = ctx.live(i) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = matches!(
            t.text.as_str(),
            "thread_rng" | "ThreadRng" | "OsRng" | "from_entropy" | "getrandom"
        ) || (t.text == "rand"
            && ctx.is_punct(i + 1, ":")
            && ctx.is_punct(i + 2, ":")
            && ctx.is_ident(i + 3, "random"));
        if hit {
            out.push(
                ctx.diag(
                    i,
                    UNSEEDED_RNG,
                    Severity::Error,
                    format!(
                        "`{}` draws entropy from the host, so two runs with the same master seed \
                     diverge",
                        t.text
                    ),
                    "derive randomness from agp_sim::SimRng (seeded from the experiment's master \
                 seed, forked per stream)"
                        .to_string(),
                ),
            );
        }
    }
}

fn rule_float_accumulate(ctx: &Ctx, out: &mut Vec<Diag>) {
    // Only meaningful when the file also iterates a hash container; after
    // the container sweep this fires only on regressions that reintroduce
    // both halves of the hazard.
    let file_has_hash = (0..ctx.toks.len()).any(|i| {
        ctx.live(i).is_some_and(|t| {
            t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet")
        })
    });
    if !file_has_hash {
        return;
    }
    for i in 0..ctx.toks.len() {
        let Some(t) = ctx.live(i) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        // `.sum::<f64>()` / `.product::<f32>()` / `.fold(0.0, …)`.
        let accum = match t.text.as_str() {
            "sum" | "product" => {
                ctx.is_punct(i + 1, ":")
                    && ctx.is_punct(i + 2, ":")
                    && ctx.is_punct(i + 3, "<")
                    && (ctx.is_ident(i + 4, "f64") || ctx.is_ident(i + 4, "f32"))
            }
            "fold" => {
                ctx.is_punct(i + 1, "(")
                    && ctx
                        .toks
                        .get(i + 2)
                        .is_some_and(|t| t.kind == TokKind::Lit && t.text.contains('.'))
            }
            _ => false,
        };
        if !accum || !ctx.is_punct(i.wrapping_sub(1), ".") {
            continue;
        }
        // Same-statement check: an unordered-iterator source upstream.
        let stmt_start = (0..i)
            .rev()
            .find(|&j| ctx.is_punct(j, ";") || ctx.is_punct(j, "{"))
            .map(|j| j + 1)
            .unwrap_or(0);
        let unordered = (stmt_start..i).any(|j| {
            (ctx.is_ident(j, "values") || ctx.is_ident(j, "keys") || ctx.is_ident(j, "iter"))
                && ctx.is_punct(j + 1, "(")
        });
        if unordered {
            out.push(
                ctx.diag(
                    i,
                    FLOAT_ACCUMULATE,
                    Severity::Warn,
                    format!(
                        "floating-point `{}` over a hash-container iterator: float addition is \
                     not associative, so a randomized visit order changes the result",
                        t.text
                    ),
                    "iterate a deterministic container (BTreeMap) or collect-and-sort before \
                 accumulating"
                        .to_string(),
                ),
            );
        }
    }
}

fn rule_panic_site(ctx: &Ctx, out: &mut Vec<Diag>) {
    for i in 0..ctx.toks.len() {
        let Some(t) = ctx.live(i) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "panic" | "todo" | "unimplemented" | "unreachable" => ctx.is_punct(i + 1, "!"),
            "unwrap" => {
                ctx.is_punct(i.wrapping_sub(1), ".")
                    && ctx.is_punct(i + 1, "(")
                    && ctx.is_punct(i + 2, ")")
            }
            "expect" => ctx.is_punct(i.wrapping_sub(1), ".") && ctx.is_punct(i + 1, "("),
            _ => false,
        };
        if hit {
            out.push(
                ctx.diag(
                    i,
                    PANIC_SITE,
                    Severity::Warn,
                    format!(
                        "`{}` can abort the whole simulation from library code",
                        t.text
                    ),
                    "return a typed error (e.g. MemError) or, where the invariant is locally \
                 provable, keep it with `// agp-lint: allow(panic-site): <why>`"
                        .to_string(),
                ),
            );
        }
    }
}

/// Identifiers that mark a statement as producing an `io::Result`: the
/// `std::fs` path segment (covers every `fs::` free function), the file
/// handle types, and the `Read`/`Write` trait methods that touch the OS.
const IO_MARKS: [&str; 12] = [
    "fs",
    "File",
    "OpenOptions",
    "read_to_string",
    "read_dir",
    "create_dir_all",
    "remove_file",
    "read_exact",
    "read_line",
    "write_all",
    "flush",
    "sync_all",
];

fn rule_io_unwrap(ctx: &Ctx, out: &mut Vec<Diag>) {
    for i in 0..ctx.toks.len() {
        let Some(t) = ctx.live(i) else { continue };
        if t.kind != TokKind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "unwrap" => {
                ctx.is_punct(i.wrapping_sub(1), ".")
                    && ctx.is_punct(i + 1, "(")
                    && ctx.is_punct(i + 2, ")")
            }
            "expect" => ctx.is_punct(i.wrapping_sub(1), ".") && ctx.is_punct(i + 1, "("),
            _ => false,
        };
        if !hit {
            continue;
        }
        // Same-statement check (as in float-accumulate): an I/O source
        // upstream of the unwrap within the current statement.
        let stmt_start = (0..i)
            .rev()
            .find(|&j| ctx.is_punct(j, ";") || ctx.is_punct(j, "{"))
            .map(|j| j + 1)
            .unwrap_or(0);
        let io = (stmt_start..i).any(|j| {
            ctx.toks[j].kind == TokKind::Ident && IO_MARKS.contains(&ctx.toks[j].text.as_str())
        });
        if io {
            out.push(
                ctx.diag(
                    i,
                    IO_UNWRAP,
                    Severity::Error,
                    format!(
                        "`{}` on an I/O result: disk and file errors are expected at runtime \
                     (and injected by fault plans), so this aborts instead of recovering",
                        t.text
                    ),
                    "propagate with `?` into a typed error (e.g. SimError::Io) so retry/backoff \
                 and degradation policies can observe the failure"
                        .to_string(),
                ),
            );
        }
    }
}

/// Run the token-level rules over one lexed file with a precomputed test
/// mask, returning raw (unsuppressed) findings. The driver merges these
/// with the AST-level findings and applies suppressions once, centrally.
pub(crate) fn token_rules(file: &str, lexed: &Lexed, mask: &[bool]) -> Vec<Diag> {
    let ctx = Ctx {
        file,
        toks: &lexed.toks,
        mask,
    };
    let mut out = Vec::new();
    rule_hash_container(&ctx, &mut out);
    rule_wall_clock(&ctx, &mut out);
    rule_unseeded_rng(&ctx, &mut out);
    rule_float_accumulate(&ctx, &mut out);
    rule_panic_site(&ctx, &mut out);
    rule_io_unwrap(&ctx, &mut out);
    out
}

/// Drop findings silenced by the crate-level allow list or by a
/// `// agp-lint: allow(id)` comment on the finding's line or the line
/// directly above, then sort by position.
pub fn apply_suppressions(out: &mut Vec<Diag>, lexed: &Lexed, crate_allow: &[String]) {
    out.retain(|d| {
        if crate_allow.iter().any(|a| a == d.id || a == "all") {
            return false;
        }
        !lexed.suppressions.iter().any(|s| {
            (s.line == d.line || s.line + 1 == d.line)
                && s.ids.iter().any(|id| id == d.id || id == "all")
        })
    });
    out.sort_by(|a, b| (a.line, a.col, a.id).cmp(&(b.line, b.col, b.id)));
}

/// Run every token-level rule over one lexed file, applying suppressions.
///
/// `crate_allow` silences whole lint classes for the crate the file belongs
/// to (from `[package.metadata.agp-lint]`).
pub fn lint_tokens(file: &str, lexed: &Lexed, crate_allow: &[String]) -> Vec<Diag> {
    let mask = test_mask(&lexed.toks);
    let mut out = token_rules(file, lexed, &mask);
    apply_suppressions(&mut out, lexed, crate_allow);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ids(src: &str) -> Vec<&'static str> {
        lint_tokens("t.rs", &lex(src), &[])
            .into_iter()
            .map(|d| d.id)
            .collect()
    }

    #[test]
    fn flags_hash_containers() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n";
        assert_eq!(ids(src), vec![HASH_CONTAINER, HASH_CONTAINER]);
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "struct S;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    \
                   fn f() { let t = std::time::Instant::now(); t.elapsed(); }\n}\n";
        assert!(ids(src).is_empty());
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nfn f() { let m: HashMap<u8, u8> = make(); }\n";
        assert_eq!(ids(src), vec![HASH_CONTAINER]);
    }

    #[test]
    fn wall_clock_and_rng() {
        let src = "fn f() { let t = Instant::now(); let r = rand::thread_rng(); \
                   let s = SystemTime::now(); }";
        let got = ids(src);
        assert!(got.contains(&WALL_CLOCK));
        assert!(got.contains(&UNSEEDED_RNG));
        assert_eq!(got.iter().filter(|i| **i == WALL_CLOCK).count(), 2);
    }

    #[test]
    fn instant_without_now_is_fine() {
        assert!(ids("struct S { started: Instant }").is_empty());
    }

    #[test]
    fn panic_family() {
        let src = "fn f(x: Option<u8>) -> u8 { let v = x.unwrap(); \
                   let w = x.expect(\"msg\"); if v == w { panic!(\"boom\") } else { v } }";
        assert_eq!(ids(src), vec![PANIC_SITE, PANIC_SITE, PANIC_SITE]);
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        assert!(
            ids("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }")
                .is_empty()
        );
    }

    #[test]
    fn float_accumulate_needs_hash_and_float() {
        let hazard = "fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }";
        assert!(ids(hazard).contains(&FLOAT_ACCUMULATE));
        // Integer sum over the same iterator is order-independent: no warn.
        let int_sum = "fn f(m: &HashMap<u32, u64>) -> u64 { m.values().sum::<u64>() }";
        assert!(!ids(int_sum).contains(&FLOAT_ACCUMULATE));
        // Float sum over a Vec is ordered: no warn.
        let vec_sum = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }";
        assert!(ids(vec_sum).is_empty());
    }

    #[test]
    fn fold_with_float_seed() {
        let src = "fn f(m: &HashMap<u32, f64>) -> f64 { m.values().fold(0.0, |a, b| a + b) }";
        assert!(ids(src).contains(&FLOAT_ACCUMULATE));
    }

    #[test]
    fn io_unwrap_fires_alongside_panic_site() {
        // Same token trips both rules; sort order puts io-unwrap first
        // ("io-unwrap" < "panic-site" at equal position).
        let src = "fn f() -> String { std::fs::read_to_string(\"p\").unwrap() }";
        assert_eq!(ids(src), vec![IO_UNWRAP, PANIC_SITE]);
        let src2 = "fn f() -> File { File::open(\"p\").expect(\"open\") }";
        assert_eq!(ids(src2), vec![IO_UNWRAP, PANIC_SITE]);
    }

    #[test]
    fn io_unwrap_needs_io_in_the_same_statement() {
        // I/O in a *previous* statement does not taint a later unwrap.
        let src = "fn f(x: Option<u8>) -> u8 { let _ = std::fs::read_dir(\".\"); x.unwrap() }";
        assert_eq!(ids(src), vec![PANIC_SITE]);
        // A plain Option unwrap never trips io-unwrap.
        assert_eq!(
            ids("fn f(x: Option<u8>) -> u8 { x.unwrap() }"),
            vec![PANIC_SITE]
        );
    }

    #[test]
    fn io_unwrap_sees_writer_methods() {
        let src = "fn f(w: &mut W) { w.write_all(b\"x\").unwrap(); }";
        assert_eq!(ids(src), vec![IO_UNWRAP, PANIC_SITE]);
        // `?`-propagated I/O is the sanctioned form: nothing fires.
        assert!(ids("fn f(w: &mut W) -> R { w.write_all(b\"x\")?; Ok(()) }").is_empty());
    }

    #[test]
    fn site_suppression_same_line_and_above() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    \
                   x.unwrap() // agp-lint: allow(panic-site): checked by caller\n}\n";
        assert!(ids(src).is_empty());
        let src2 = "fn f(x: Option<u8>) -> u8 {\n    \
                    // agp-lint: allow(panic-site): checked by caller\n    x.unwrap()\n}\n";
        assert!(ids(src2).is_empty());
        // Suppressing a different id does not help.
        let src3 = "fn f(x: Option<u8>) -> u8 {\n    \
                    x.unwrap() // agp-lint: allow(wall-clock)\n}\n";
        assert_eq!(ids(src3), vec![PANIC_SITE]);
    }

    #[test]
    fn crate_allow_silences_class() {
        let src = "fn f() { let t = Instant::now(); }";
        let got = lint_tokens("t.rs", &lex(src), &["wall-clock".to_string()]);
        assert!(got.is_empty());
    }

    #[test]
    fn diags_are_sorted_by_position() {
        let src = "fn f(m: HashMap<u8, u8>, x: Option<u8>) { x.unwrap(); let _ = &m; }";
        let got = lint_tokens("t.rs", &lex(src), &[]);
        let lines_cols: Vec<_> = got.iter().map(|d| (d.line, d.col)).collect();
        let mut sorted = lines_cols.clone();
        sorted.sort();
        assert_eq!(lines_cols, sorted);
    }
}
