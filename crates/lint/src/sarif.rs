//! SARIF 2.1.0 rendering of a lint report.
//!
//! Hand-rolled like the JSON renderer in [`crate::diag`] (the workspace
//! builds offline, so no `serde_json` in build tooling), emitting the
//! minimal subset CI code-scanning uploads and editors consume: one run,
//! one driver with a rule entry per lint id, one result per diagnostic
//! with a physical location. Key order is fixed so reports diff
//! byte-for-byte across runs.

use crate::diag::{json_escape, Diag, Severity};
use crate::explain;
use crate::rules::ALL_IDS;

/// SARIF `level` for a diagnostic severity.
fn level(s: Severity) -> &'static str {
    match s {
        Severity::Warn => "warning",
        Severity::Error => "error",
    }
}

/// Render the full report as a SARIF 2.1.0 document.
pub fn render_sarif(diags: &[Diag]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"agp-lint\",\n          \
         \"informationUri\": \"https://github.com/agp/agp\",\n          \"rules\": [",
    );
    for (i, id) in ALL_IDS.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let short = explain::short_description(id).unwrap_or("agp-lint rule");
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            id,
            json_escape(short)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"{}\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}, \"startColumn\": \
             {}}}}}}}]}}",
            d.id,
            level(d.severity),
            json_escape(&format!("{} ({})", d.message, d.suggestion)),
            json_escape(&d.file),
            d.line.max(1),
            d.col.max(1),
        ));
    }
    out.push_str("\n      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diag {
        Diag {
            file: "crates/mem/src/kernel.rs".into(),
            line: 10,
            col: 5,
            id: crate::rules::HASH_CONTAINER,
            severity: Severity::Error,
            message: "std HashMap".into(),
            suggestion: "use BTreeMap".into(),
        }
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let s = render_sarif(&[sample()]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        // Every rule id is registered on the driver.
        for id in ALL_IDS {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id}");
        }
        assert!(s.contains("\"ruleId\": \"hash-container\""));
        assert!(s.contains("\"level\": \"error\""));
        assert!(s.contains("\"uri\": \"crates/mem/src/kernel.rs\""));
        assert!(s.contains("\"startLine\": 10"));
    }

    #[test]
    fn empty_report_is_valid_and_stable() {
        let a = render_sarif(&[]);
        let b = render_sarif(&[]);
        assert_eq!(a, b);
        assert!(a.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn warning_maps_to_warning_level() {
        let mut d = sample();
        d.severity = Severity::Warn;
        assert!(render_sarif(&[d]).contains("\"level\": \"warning\""));
    }
}
