//! AST-level semantic rules: determinism dataflow and parallelism
//! readiness.
//!
//! | id                 | severity | hazard                                              |
//! |--------------------|----------|-----------------------------------------------------|
//! | `nondet-iter`      | error    | iterating a value that *resolves* to HashMap/HashSet|
//! | `sim-time-arith`   | error    | unchecked `+`/`*` on raw sim-time microseconds      |
//! | `float-accum-loop` | warn     | float accumulator updated inside a hash-iter loop   |
//! | `par-static-mut`   | error    | `static mut` in a fan-out crate                     |
//! | `par-interior-mut` | warn     | `Cell`/`RefCell` in a fan-out crate                 |
//! | `par-thread-local` | warn     | `thread_local!` in a fan-out crate                  |
//!
//! The dataflow rules run everywhere; the `par-*` family only inside the
//! crates that run under (or inside) the thread fan-out
//! ([`FANOUT_CRATES`]), so single-threaded convenience elsewhere stays
//! legal until a crate actually goes parallel.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Arm, Block, Expr, ExprKind, File, FnDef, Item, ItemKind, Stmt, Type, TypeKind};
use crate::diag::{Diag, Severity};
use crate::lexer::{Lexed, TokKind};
use crate::rules::{
    FLOAT_ACCUM_LOOP, NONDET_ITER, PAR_INTERIOR_MUT, PAR_STATIC_MUT, PAR_THREAD_LOCAL,
    SIM_TIME_ARITH,
};
use crate::symbols::{CrateSymbols, Workspace};

/// Crates that execute under the thread fan-out and must stay
/// shared-state clean. `agp-experiments` owns the worker pool
/// (`run_pool`) and `agp-cli` drives it (`agp run`/`report --jobs N`);
/// the simulation crates below them run concurrently on the workers, so
/// the `par-*` rules hold the whole stack to the stricter sharing
/// discipline.
pub const FANOUT_CRATES: [&str; 6] = [
    "agp-sim",
    "agp-cluster",
    "agp-mem",
    "agp-core",
    "agp-experiments",
    "agp-cli",
];

/// Iterator-producing methods whose visit order is the container's.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Methods that expose a sim-time value as a raw integer.
const TIME_ESCAPES: [&str; 1] = ["as_us"];

/// Run all semantic rules over one parsed file.
///
/// `mask` is the `#[cfg(test)]` token mask from [`crate::rules::test_mask`];
/// diagnostics anchored on masked tokens are dropped. `crate_name` gates
/// the `par-*` family; pass `""` for loose files.
pub fn lint_semantic(
    file: &str,
    lexed: &Lexed,
    ast: &File,
    mask: &[bool],
    ws: &Workspace,
    home: &CrateSymbols,
    crate_name: &str,
) -> Vec<Diag> {
    let mut pass = Pass {
        file,
        lexed,
        mask,
        ws,
        home,
        out: Vec::new(),
    };
    pass.visit_items(&ast.items, None);
    if FANOUT_CRATES.contains(&crate_name) {
        pass.par_readiness(ast);
    }
    pass.out
        .sort_by(|a, b| (a.line, a.col, a.id).cmp(&(b.line, b.col, b.id)));
    pass.out
}

/// What the dataflow walk knows about one local binding.
#[derive(Debug, Clone, Default)]
struct VarInfo {
    ty: Option<Type>,
    /// Holds a raw integer that came out of a sim-time value.
    tainted: bool,
    /// Floating-point accumulator candidate.
    float: bool,
}

struct Pass<'a> {
    file: &'a str,
    lexed: &'a Lexed,
    mask: &'a [bool],
    ws: &'a Workspace,
    home: &'a CrateSymbols,
    out: Vec<Diag>,
}

/// Per-function walk state.
struct FnCtx {
    scopes: Vec<BTreeMap<String, VarInfo>>,
    /// Identifiers that end up inside a `SimTime`/`SimDur` constructor
    /// argument somewhere in this body ("destined" for a time value).
    destined: BTreeSet<String>,
    /// Nesting of loops iterating a hash container.
    hash_loop_depth: usize,
    /// Inside the argument list of a sim-time constructor call.
    in_time_ctor: bool,
}

impl FnCtx {
    fn lookup(&self, name: &str) -> Option<&VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn insert(&mut self, name: String, info: VarInfo) {
        if let Some(top) = self.scopes.last_mut() {
            top.insert(name, info);
        }
    }
}

impl<'a> Pass<'a> {
    fn masked(&self, tok: usize) -> bool {
        self.mask.get(tok).copied().unwrap_or(false)
    }

    fn diag(
        &mut self,
        tok: usize,
        id: &'static str,
        severity: Severity,
        message: String,
        suggestion: String,
    ) {
        if self.masked(tok) {
            return;
        }
        let (line, col) = self
            .lexed
            .toks
            .get(tok)
            .map(|t| (t.line, t.col))
            .unwrap_or((0, 0));
        self.out.push(Diag {
            file: self.file.to_string(),
            line,
            col,
            id,
            severity,
            message,
            suggestion,
        });
    }

    // ------------------------------------------------------------------
    // Item traversal
    // ------------------------------------------------------------------

    fn visit_items(&mut self, items: &[Item], impl_target: Option<&str>) {
        for item in items {
            match &item.kind {
                ItemKind::Fn(f) => self.visit_fn(f, impl_target),
                ItemKind::Impl {
                    target,
                    items: inner,
                    ..
                } => {
                    self.visit_items(inner, target.as_deref());
                }
                ItemKind::Trait { items: inner, .. } => self.visit_items(inner, None),
                ItemKind::Mod {
                    items: Some(inner), ..
                } => self.visit_items(inner, impl_target),
                _ => {}
            }
        }
    }

    fn visit_fn(&mut self, f: &FnDef, impl_target: Option<&str>) {
        let Some(body) = &f.body else { return };
        if self.masked(f.tok) {
            return;
        }
        let mut params = BTreeMap::new();
        for p in &f.params {
            let ty = if p.name == "self" {
                p.ty.clone().or_else(|| {
                    impl_target.map(|t| Type {
                        kind: TypeKind::Path {
                            segs: vec![t.to_string()],
                            args: Vec::new(),
                        },
                        span: f.span,
                    })
                })
            } else {
                p.ty.clone()
            };
            let tainted = false;
            params.insert(
                p.name.clone(),
                VarInfo {
                    float: ty
                        .as_ref()
                        .and_then(|t| t.head())
                        .is_some_and(|h| h == "f32" || h == "f64"),
                    ty,
                    tainted,
                },
            );
        }
        let mut ctx = FnCtx {
            scopes: vec![params],
            destined: BTreeSet::new(),
            hash_loop_depth: 0,
            in_time_ctor: false,
        };
        collect_destined(body, &mut ctx.destined);
        self.walk_block(body, &mut ctx);
    }

    // ------------------------------------------------------------------
    // Dataflow walk
    // ------------------------------------------------------------------

    fn walk_block(&mut self, block: &Block, ctx: &mut FnCtx) {
        ctx.scopes.push(BTreeMap::new());
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { name, ty, init, .. } => {
                    if let Some(init) = init {
                        self.walk_expr(init, ctx);
                    }
                    let declared = ty
                        .clone()
                        .or_else(|| init.as_ref().and_then(|e| self.type_of(e, ctx)));
                    let tainted = init.as_ref().is_some_and(|e| self.tainted(e, ctx));
                    let float = declared
                        .as_ref()
                        .and_then(|t| t.head())
                        .is_some_and(|h| h == "f32" || h == "f64")
                        || init.as_ref().is_some_and(is_float_literal);
                    if let Some(name) = name {
                        ctx.insert(
                            name.clone(),
                            VarInfo {
                                ty: declared,
                                tainted,
                                float,
                            },
                        );
                    }
                }
                Stmt::Expr(e) => self.walk_expr(e, ctx),
                Stmt::Item(item) => self.visit_items(std::slice::from_ref(item), None),
            }
        }
        ctx.scopes.pop();
    }

    fn walk_expr(&mut self, e: &Expr, ctx: &mut FnCtx) {
        match &e.kind {
            ExprKind::For { pat, iter, body } => {
                // Walking `iter` first also fires the method-call form of
                // nondet-iter (`for v in m.values()`), so the direct diag
                // below covers only bare hash values (`for k in &m`).
                self.walk_expr(iter, ctx);
                let direct = self.expr_is_hash(iter, ctx);
                if direct {
                    self.diag(
                        iter.tok,
                        NONDET_ITER,
                        Severity::Error,
                        "iterating a value that resolves to a std hash container: visit order \
                         is seeded per-process, so replay diverges"
                            .to_string(),
                        "switch the underlying container to BTreeMap/BTreeSet, or collect and \
                         sort before iterating"
                            .to_string(),
                    );
                }
                let hash_loop = direct
                    || match &iter.kind {
                        ExprKind::MethodCall { recv, name, .. } => {
                            ITER_METHODS.contains(&name.as_str()) && self.expr_is_hash(recv, ctx)
                        }
                        _ => false,
                    };
                ctx.scopes.push(BTreeMap::new());
                if let Some(p) = pat {
                    ctx.insert(p.clone(), VarInfo::default());
                }
                if hash_loop {
                    ctx.hash_loop_depth += 1;
                }
                self.walk_block(body, ctx);
                if hash_loop {
                    ctx.hash_loop_depth -= 1;
                }
                ctx.scopes.pop();
            }
            ExprKind::MethodCall { recv, name, args } => {
                if ITER_METHODS.contains(&name.as_str()) && self.expr_is_hash(recv, ctx) {
                    self.diag(
                        e.tok,
                        NONDET_ITER,
                        Severity::Error,
                        format!(
                            "`.{name}()` on a value that resolves to a std hash container: \
                             visit order is seeded per-process, so replay diverges"
                        ),
                        "switch the underlying container to BTreeMap/BTreeSet, or collect and \
                         sort before iterating"
                            .to_string(),
                    );
                }
                self.walk_expr(recv, ctx);
                for a in args {
                    self.walk_expr(a, ctx);
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // Float arithmetic cannot wrap (and Rust's float→int `as`
                // casts saturate), so only integer `+`/`*` is hazardous.
                if (op == "+" || op == "*")
                    && !(self.is_float_expr(lhs, ctx) || self.is_float_expr(rhs, ctx))
                    && (ctx.in_time_ctor || self.tainted(lhs, ctx) || self.tainted(rhs, ctx))
                {
                    self.diag(
                        e.tok,
                        SIM_TIME_ARITH,
                        Severity::Error,
                        format!(
                            "unchecked `{op}` on raw sim-time microseconds: overflow wraps \
                             silently in release builds and corrupts the clock"
                        ),
                        "use `checked_add`/`checked_mul` (propagating the error) or \
                         `saturating_add`/`saturating_mul` on the raw value"
                            .to_string(),
                    );
                }
                self.walk_expr(lhs, ctx);
                self.walk_expr(rhs, ctx);
            }
            ExprKind::Assign { op, lhs, rhs } => {
                if op == "+=" || op == "*=" {
                    // The target is hazardous when it already holds a raw
                    // sim-time value (a tainted local, or `.0` on a
                    // SimTime/SimDur — covers AddAssign impls) or when it
                    // later feeds a SimTime/SimDur constructor.
                    let destined = matches!(
                        &lhs.kind,
                        ExprKind::Path(segs)
                            if segs.len() == 1 && ctx.destined.contains(&segs[0])
                    );
                    if destined || self.tainted(lhs, ctx) {
                        self.diag(
                            e.tok,
                            SIM_TIME_ARITH,
                            Severity::Error,
                            format!(
                                "unchecked `{op}` on a raw microsecond value that \
                                 feeds a SimTime/SimDur: overflow wraps silently in \
                                 release builds"
                            ),
                            "accumulate with `checked_add`/`saturating_add` (or \
                             `checked_mul`/`saturating_mul`) instead"
                                .to_string(),
                        );
                    }
                    if let ExprKind::Path(segs) = &lhs.kind {
                        if let [name] = segs.as_slice() {
                            let is_float = ctx.lookup(name).is_some_and(|v| v.float);
                            if op == "+=" && is_float && ctx.hash_loop_depth > 0 {
                                self.diag(
                                    e.tok,
                                    FLOAT_ACCUM_LOOP,
                                    Severity::Warn,
                                    format!(
                                        "float accumulator `{name}` updated inside a loop over \
                                         a hash container: float addition is not associative, \
                                         so a randomized visit order changes the result"
                                    ),
                                    "iterate a deterministic container, or collect values and \
                                     sort before accumulating"
                                        .to_string(),
                                );
                            }
                        }
                    }
                    // Compound assignment re-taints nothing new: the
                    // variable keeps its existing classification.
                } else if op == "=" {
                    // Rebinding an existing variable updates its taint.
                    if let ExprKind::Path(segs) = &lhs.kind {
                        if let [name] = segs.as_slice() {
                            let tainted = self.tainted(rhs, ctx);
                            if let Some(info) =
                                ctx.scopes.iter_mut().rev().find_map(|s| s.get_mut(name))
                            {
                                info.tainted = tainted;
                            }
                        }
                    }
                }
                self.walk_expr(lhs, ctx);
                self.walk_expr(rhs, ctx);
            }
            ExprKind::Call { callee, args } => {
                let is_ctor = self.is_time_ctor(callee, ctx);
                self.walk_expr(callee, ctx);
                let saved = ctx.in_time_ctor;
                if is_ctor {
                    ctx.in_time_ctor = true;
                }
                for a in args {
                    self.walk_expr(a, ctx);
                }
                ctx.in_time_ctor = saved;
            }
            ExprKind::While { cond, body } => {
                self.walk_expr(cond, ctx);
                self.walk_block(body, ctx);
            }
            ExprKind::Loop { body } => self.walk_block(body, ctx),
            ExprKind::If { cond, then, els } => {
                self.walk_expr(cond, ctx);
                self.walk_block(then, ctx);
                if let Some(els) = els {
                    self.walk_expr(els, ctx);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                self.walk_expr(scrutinee, ctx);
                for Arm { guard, body, .. } in arms {
                    ctx.scopes.push(BTreeMap::new());
                    if let Some(g) = guard {
                        self.walk_expr(g, ctx);
                    }
                    self.walk_expr(body, ctx);
                    ctx.scopes.pop();
                }
            }
            ExprKind::Closure { params, body } => {
                ctx.scopes.push(BTreeMap::new());
                for p in params {
                    ctx.insert(
                        p.name.clone(),
                        VarInfo {
                            float: p
                                .ty
                                .as_ref()
                                .and_then(|t| t.head())
                                .is_some_and(|h| h == "f32" || h == "f64"),
                            ty: p.ty.clone(),
                            tainted: false,
                        },
                    );
                }
                self.walk_expr(body, ctx);
                ctx.scopes.pop();
            }
            ExprKind::Block(b) => self.walk_block(b, ctx),
            ExprKind::Field { recv, .. } => self.walk_expr(recv, ctx),
            ExprKind::Index { recv, index } => {
                self.walk_expr(recv, ctx);
                self.walk_expr(index, ctx);
            }
            ExprKind::Unary { expr, .. }
            | ExprKind::Ref { expr, .. }
            | ExprKind::Try(expr)
            | ExprKind::Cast { expr, .. } => self.walk_expr(expr, ctx),
            ExprKind::StructLit { fields, .. } => {
                for (_, v) in fields {
                    self.walk_expr(v, ctx);
                }
            }
            ExprKind::Macro { args, .. } | ExprKind::Tuple(args) | ExprKind::Array(args) => {
                for a in args {
                    self.walk_expr(a, ctx);
                }
            }
            ExprKind::Return(Some(v)) => self.walk_expr(v, ctx),
            ExprKind::Range { lo, hi } => {
                if let Some(lo) = lo {
                    self.walk_expr(lo, ctx);
                }
                if let Some(hi) = hi {
                    self.walk_expr(hi, ctx);
                }
            }
            ExprKind::Lit(_)
            | ExprKind::Path(_)
            | ExprKind::Return(None)
            | ExprKind::Break
            | ExprKind::Continue
            | ExprKind::Unknown => {}
        }
    }

    // ------------------------------------------------------------------
    // Classification helpers
    // ------------------------------------------------------------------

    /// Is `callee` a `SimTime`/`SimDur` constructor path (`SimDur::from_us`,
    /// the bare tuple constructor `SimDur(…)`, or an alias of either)?
    fn is_time_ctor(&self, callee: &Expr, _ctx: &FnCtx) -> bool {
        if let ExprKind::Path(segs) = &callee.kind {
            if let Some(first) = segs.first() {
                return self.ws.name_is_sim_time(self.home, first);
            }
        }
        false
    }

    /// Shallow type inference for the expressions the rules care about.
    fn type_of(&self, e: &Expr, ctx: &FnCtx) -> Option<Type> {
        match &e.kind {
            ExprKind::Path(segs) => match segs.as_slice() {
                [name] => ctx.lookup(name).and_then(|v| v.ty.clone()),
                _ => None,
            },
            ExprKind::Field { recv, name } => {
                let recv_ty = self.type_of(recv, ctx)?;
                let head = recv_ty.head()?;
                self.ws.field_type(self.home, head, name).cloned()
            }
            ExprKind::MethodCall { recv, name, .. } => match name.as_str() {
                "clone" | "to_owned" => self.type_of(recv, ctx),
                _ => None,
            },
            ExprKind::Call { callee, .. } => {
                if let ExprKind::Path(segs) = &callee.kind {
                    match segs.as_slice() {
                        // `T::new()` / `T::with_capacity(…)` / `T::default()`.
                        [ty_name, ctor]
                            if matches!(
                                ctor.as_str(),
                                "new" | "with_capacity" | "default" | "from"
                            ) =>
                        {
                            return Some(Type {
                                kind: TypeKind::Path {
                                    segs: vec![ty_name.clone()],
                                    args: Vec::new(),
                                },
                                span: e.span,
                            });
                        }
                        [f] => return self.ws.fn_return(self.home, f).cloned(),
                        _ => {}
                    }
                }
                None
            }
            ExprKind::StructLit { path, .. } => Some(Type {
                kind: TypeKind::Path {
                    segs: path.clone(),
                    args: Vec::new(),
                },
                span: e.span,
            }),
            ExprKind::Ref { expr, .. } | ExprKind::Unary { expr, .. } | ExprKind::Try(expr) => {
                self.type_of(expr, ctx)
            }
            ExprKind::Cast { ty, .. } => Some(ty.clone()),
            _ => None,
        }
    }

    /// Conservatively: does `e` evaluate to a float?
    fn is_float_expr(&self, e: &Expr, ctx: &FnCtx) -> bool {
        match &e.kind {
            ExprKind::Cast { ty, .. } => ty.head().is_some_and(|h| h == "f32" || h == "f64"),
            ExprKind::Lit(_) => is_float_literal(e),
            ExprKind::Path(segs) => {
                matches!(segs.as_slice(), [n] if ctx.lookup(n).is_some_and(|v| v.float))
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.is_float_expr(lhs, ctx) || self.is_float_expr(rhs, ctx)
            }
            ExprKind::Unary { expr, .. } | ExprKind::Ref { expr, .. } => {
                self.is_float_expr(expr, ctx)
            }
            ExprKind::MethodCall { name, .. } => name.ends_with("_f64") || name.ends_with("_f32"),
            _ => false,
        }
    }

    fn expr_is_hash(&self, e: &Expr, ctx: &FnCtx) -> bool {
        // Direct path-typed constructors spell the container out and are
        // already covered by the token rule; here we chase names.
        match self.type_of(e, ctx) {
            Some(ty) => self.ws.is_hash(self.home, &ty),
            None => false,
        }
    }

    /// Does `e` evaluate to a raw integer escaped from a sim-time value?
    fn tainted(&self, e: &Expr, ctx: &FnCtx) -> bool {
        match &e.kind {
            ExprKind::MethodCall { name, .. } => TIME_ESCAPES.contains(&name.as_str()),
            ExprKind::Field { recv, name } => {
                name == "0"
                    && self
                        .type_of(recv, ctx)
                        .is_some_and(|t| self.ws.is_sim_time(self.home, &t))
            }
            ExprKind::Path(segs) => match segs.as_slice() {
                [name] => ctx.lookup(name).is_some_and(|v| v.tainted),
                _ => false,
            },
            ExprKind::Binary { lhs, rhs, .. } => self.tainted(lhs, ctx) || self.tainted(rhs, ctx),
            ExprKind::Unary { expr, .. } | ExprKind::Ref { expr, .. } | ExprKind::Try(expr) => {
                self.tainted(expr, ctx)
            }
            // An explicit cast is the sanctioned "I know what I am doing"
            // escape: it kills the taint.
            ExprKind::Cast { .. } => false,
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Parallelism readiness (token + item level, crate-gated)
    // ------------------------------------------------------------------

    fn par_readiness(&mut self, ast: &File) {
        let mut statics = Vec::new();
        ast.walk_items(&mut |item| {
            if let ItemKind::Static {
                name,
                mutable: true,
                ..
            } = &item.kind
            {
                statics.push((item.tok, name.clone()));
            }
        });
        for (tok, name) in statics {
            self.diag(
                tok,
                PAR_STATIC_MUT,
                Severity::Error,
                format!(
                    "`static mut {name}` is a data race under the thread fan-out: this \
                     crate runs on `--jobs N` worker threads"
                ),
                "use an atomic, a lock, or thread the state through explicit arguments".to_string(),
            );
        }
        for (i, t) in self.lexed.toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "Cell" | "RefCell" => {
                    self.diag(
                        i,
                        PAR_INTERIOR_MUT,
                        Severity::Warn,
                        format!(
                            "`{}` is non-atomic interior mutability: sharing it across the \
                             worker-pool fan-out is undefined behaviour or a compile wall",
                            t.text
                        ),
                        "prefer &mut plumbing or an atomic/lock if the state must be shared"
                            .to_string(),
                    );
                }
                "thread_local" => {
                    let bang = self
                        .lexed
                        .toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokKind::Punct && n.text == "!");
                    if bang {
                        self.diag(
                            i,
                            PAR_THREAD_LOCAL,
                            Severity::Warn,
                            "`thread_local!` state silently forks per pool worker, \
                             so results depend on thread scheduling"
                                .to_string(),
                            "keep per-thread scratch out of fan-out crates, or merge it \
                             deterministically like agp-perf's recorder registry"
                                .to_string(),
                        );
                    }
                }
                _ => {}
            }
        }
    }
}

/// Float literal (or a unary/cast wrapper around one): marks a `let`
/// binding as a floating-point accumulator candidate.
fn is_float_literal(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Lit(s) => {
            s.chars().next().is_some_and(|c| c.is_ascii_digit())
                && (s.contains('.') || s.ends_with("f64") || s.ends_with("f32"))
        }
        ExprKind::Unary { expr, .. } => is_float_literal(expr),
        ExprKind::Cast { ty, .. } => ty.head().is_some_and(|h| h == "f32" || h == "f64"),
        _ => false,
    }
}

/// Collect identifiers appearing inside `SimTime`/`SimDur` constructor
/// arguments anywhere in the body — "destined" microsecond accumulators.
fn collect_destined(block: &Block, out: &mut BTreeSet<String>) {
    fn idents(e: &Expr, out: &mut BTreeSet<String>) {
        match &e.kind {
            ExprKind::Path(segs) => {
                if let [name] = segs.as_slice() {
                    out.insert(name.clone());
                }
            }
            _ => walk_children(e, &mut |c| idents(c, out)),
        }
    }
    fn scan_expr(e: &Expr, out: &mut BTreeSet<String>) {
        if let ExprKind::Call { callee, args } = &e.kind {
            if let ExprKind::Path(segs) = &callee.kind {
                if segs
                    .first()
                    .is_some_and(|s| s == "SimTime" || s == "SimDur")
                {
                    for a in args {
                        idents(a, out);
                    }
                }
            }
        }
        walk_children(e, &mut |c| scan_expr(c, out));
        own_blocks(e, &mut |b| scan_block(b, out));
    }
    fn scan_block(b: &Block, out: &mut BTreeSet<String>) {
        for s in &b.stmts {
            match s {
                Stmt::Let { init: Some(e), .. } => scan_expr(e, out),
                Stmt::Expr(e) => scan_expr(e, out),
                _ => {}
            }
        }
    }
    scan_block(block, out);
}

/// Apply `f` to each block `e` owns directly. [`walk_children`] already
/// yields the expression-valued limbs (match bodies, closure bodies,
/// `else` chains); together the two visit every nested node exactly once.
fn own_blocks(e: &Expr, f: &mut dyn FnMut(&Block)) {
    match &e.kind {
        ExprKind::For { body, .. } | ExprKind::While { body, .. } | ExprKind::Loop { body } => {
            f(body)
        }
        ExprKind::If { then, .. } => f(then),
        ExprKind::Block(b) => f(b),
        _ => {}
    }
}

/// Apply `f` to every direct child expression of `e`.
fn walk_children(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    match &e.kind {
        ExprKind::MethodCall { recv, args, .. } => {
            f(recv);
            for a in args {
                f(a);
            }
        }
        ExprKind::Call { callee, args } => {
            f(callee);
            for a in args {
                f(a);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Field { recv, .. } => f(recv),
        ExprKind::Index { recv, index } => {
            f(recv);
            f(index);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Ref { expr, .. }
        | ExprKind::Try(expr)
        | ExprKind::Cast { expr, .. } => f(expr),
        ExprKind::For { iter, .. } => f(iter),
        ExprKind::While { cond, .. } => f(cond),
        ExprKind::If { cond, els, .. } => {
            f(cond);
            if let Some(els) = els {
                f(els);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            f(scrutinee);
            for a in arms {
                if let Some(g) = &a.guard {
                    f(g);
                }
                f(&a.body);
            }
        }
        ExprKind::Closure { body, .. } => f(body),
        ExprKind::StructLit { fields, .. } => {
            for (_, v) in fields {
                f(v);
            }
        }
        ExprKind::Macro { args, .. } | ExprKind::Tuple(args) | ExprKind::Array(args) => {
            for a in args {
                f(a);
            }
        }
        ExprKind::Return(Some(v)) => f(v),
        ExprKind::Range { lo, hi } => {
            if let Some(lo) = lo {
                f(lo);
            }
            if let Some(hi) = hi {
                f(hi);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::rules::test_mask;
    use crate::symbols::CrateSymbols;

    fn run(src: &str, crate_name: &str) -> Vec<Diag> {
        let lexed = lex(src);
        let (ast, issues) = parse(&lexed.toks);
        assert!(issues.is_empty(), "{issues:#?}");
        let mut home = CrateSymbols {
            name: crate_name.to_string(),
            ..Default::default()
        };
        home.add_file(&ast);
        let mut ws = Workspace::default();
        ws.insert(home.clone());
        let mask = test_mask(&lexed.toks);
        lint_semantic("t.rs", &lexed, &ast, &mask, &ws, &home, crate_name)
    }

    fn ids(src: &str) -> Vec<&'static str> {
        run(src, "").into_iter().map(|d| d.id).collect()
    }

    #[test]
    fn nondet_iter_through_alias() {
        let src = "type Index = HashMap<u32, u32>;\n\
                   fn f(m: &Index) { for v in m.values() { let _ = v; } }";
        let got = ids(src);
        // `.values()` on hash and the for-loop over its iterator: one
        // finding from the method call (the loop iterates the iterator,
        // not the map itself).
        assert!(got.contains(&NONDET_ITER), "{got:?}");
    }

    #[test]
    fn nondet_iter_direct_for_over_ref() {
        let src = "type Index = HashSet<u64>;\n\
                   fn f(s: &Index) { for v in s { let _ = v; } }";
        assert!(ids(src).contains(&NONDET_ITER));
    }

    #[test]
    fn btree_alias_is_clean() {
        let src = "type Index = BTreeMap<u32, u32>;\n\
                   fn f(m: &Index) { for v in m.values() { let _ = v; } }";
        assert!(!ids(src).contains(&NONDET_ITER));
    }

    #[test]
    fn nondet_iter_through_field_and_local() {
        let src = "type Index = HashMap<u32, u32>;\n\
                   struct S { idx: Index }\n\
                   impl S { fn f(&self) { for v in self.idx.values() { let _ = v; } } }\n\
                   fn g() { let m = Index::new(); for k in m.keys() { let _ = k; } }";
        let got = ids(src);
        assert_eq!(
            got.iter().filter(|i| **i == NONDET_ITER).count(),
            2,
            "{got:?}"
        );
    }

    #[test]
    fn sim_time_arith_on_as_us() {
        let src = "fn f(a: SimTime, b: SimDur) -> u64 { a.as_us() + b.as_us() }";
        assert!(ids(src).contains(&SIM_TIME_ARITH));
    }

    #[test]
    fn sim_time_arith_through_local() {
        let src = "fn f(a: SimTime, b: SimTime) -> bool {\n\
                     let x = a.as_us();\n\
                     let y = b.as_us();\n\
                     x + y > 10\n\
                   }";
        assert!(ids(src).contains(&SIM_TIME_ARITH));
    }

    #[test]
    fn sim_time_arith_in_ctor_args() {
        let src = "fn f(us: u64, seek: u64) -> SimDur { SimDur::from_us(us + seek) }";
        assert!(ids(src).contains(&SIM_TIME_ARITH));
    }

    #[test]
    fn sim_time_arith_destined_accumulator() {
        let src = "fn f(n: u64) -> SimDur {\n\
                     let mut us = 0u64;\n\
                     us += n;\n\
                     SimDur::from_us(us)\n\
                   }";
        assert!(ids(src).contains(&SIM_TIME_ARITH));
    }

    #[test]
    fn sim_time_arith_on_raw_field() {
        let src =
            "impl SimTime { fn bump(self, rhs: SimDur) -> SimTime { SimTime(self.0 + rhs.0) } }";
        assert!(ids(src).contains(&SIM_TIME_ARITH));
    }

    #[test]
    fn sim_time_arith_on_add_assign_impl() {
        let src = "impl SimTime { fn add_assign(&mut self, rhs: SimDur) { self.0 += rhs.0; } }";
        assert!(ids(src).contains(&SIM_TIME_ARITH));
    }

    #[test]
    fn checked_and_saturating_are_clean() {
        let src = "fn f(a: SimTime, b: SimDur) -> u64 { a.as_us().saturating_add(b.as_us()) }\n\
                   fn g(us: u64) -> SimDur { SimDur::from_us(us.saturating_mul(2)) }";
        assert!(!ids(src).contains(&SIM_TIME_ARITH));
    }

    #[test]
    fn cast_kills_taint() {
        let src = "fn f(a: SimTime) -> u64 { let x = a.as_us() as u64; x + 1 }";
        assert!(!ids(src).contains(&SIM_TIME_ARITH));
    }

    #[test]
    fn subtraction_and_comparison_are_clean() {
        let src = "fn f(a: SimTime, b: SimTime) -> u64 { a.as_us() - b.as_us() }";
        assert!(!ids(src).contains(&SIM_TIME_ARITH));
    }

    #[test]
    fn float_scaling_in_ctor_is_clean() {
        // Float arithmetic cannot wrap; `as u64` saturates. The mul_f64
        // idiom must not be flagged.
        let src = "impl SimDur { fn mul_f64(self, factor: f64) -> SimDur { \
                   SimDur((self.0 as f64 * factor).round() as u64) } }";
        assert!(!ids(src).contains(&SIM_TIME_ARITH));
    }

    #[test]
    fn float_accum_in_hash_loop() {
        let src = "type Index = HashMap<u32, f64>;\n\
                   fn f(m: &Index) -> f64 {\n\
                     let mut total = 0.0;\n\
                     for v in m.values() { total += v; }\n\
                     total\n\
                   }";
        let got = ids(src);
        assert!(got.contains(&FLOAT_ACCUM_LOOP), "{got:?}");
    }

    #[test]
    fn float_accum_over_vec_is_clean() {
        let src = "fn f(v: &Vec<f64>) -> f64 {\n\
                     let mut total = 0.0;\n\
                     for x in v.iter() { total += x; }\n\
                     total\n\
                   }";
        assert!(!ids(src).contains(&FLOAT_ACCUM_LOOP));
    }

    #[test]
    fn int_accum_in_hash_loop_is_clean() {
        let src = "type Index = HashMap<u32, u64>;\n\
                   fn f(m: &Index) -> u64 {\n\
                     let mut total = 0u64;\n\
                     for v in m.values() { total += v; }\n\
                     total\n\
                   }";
        assert!(!ids(src).contains(&FLOAT_ACCUM_LOOP));
    }

    #[test]
    fn par_rules_fire_only_in_fanout_crates() {
        let src = "static mut COUNTER: u64 = 0;\n\
                   struct S { c: RefCell<u64>, d: Cell<u8> }\n\
                   thread_local! { static TL: u8 = 0; }\n";
        let fanout = run(src, "agp-sim");
        assert!(fanout.iter().any(|d| d.id == PAR_STATIC_MUT));
        assert_eq!(
            fanout.iter().filter(|d| d.id == PAR_INTERIOR_MUT).count(),
            2
        );
        assert!(fanout.iter().any(|d| d.id == PAR_THREAD_LOCAL));
        let free = run(src, "agp-telemetry");
        assert!(free.iter().all(|d| d.id != PAR_STATIC_MUT));
        assert!(free.is_empty(), "{free:?}");
    }

    #[test]
    fn par_rules_skip_test_code() {
        let src = "#[cfg(test)]\nmod tests { static mut X: u8 = 0; fn f(c: RefCell<u8>) {} }";
        assert!(run(src, "agp-mem").is_empty());
    }

    #[test]
    fn atomic_cell_is_not_interior_mut() {
        let src = "struct S { c: AtomicCell<u64> }";
        assert!(run(src, "agp-cluster").is_empty());
    }
}
