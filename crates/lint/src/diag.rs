//! Diagnostic model and text/JSON rendering.
//!
//! JSON output is hand-rolled (the workspace builds offline, so no
//! `serde_json` in build tooling) and emits one object per diagnostic with
//! stable key order, so downstream tooling can diff reports byte-for-byte.

use std::fmt;

/// How bad a finding is. `Error` findings always fail the run; `Warn`
/// findings fail it only under `--deny-warnings`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding, pinned to a file position.
#[derive(Clone, Debug)]
pub struct Diag {
    /// Path relative to the workspace root (or as given on the command line).
    pub file: String,
    pub line: u32,
    pub col: u32,
    /// Stable lint id, e.g. `hash-container`.
    pub id: &'static str,
    pub severity: Severity,
    /// What was found and why it matters.
    pub message: String,
    /// How to fix or suppress it.
    pub suggestion: String,
}

impl Diag {
    /// `path:line:col: error[id]: message` followed by an indented help line.
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}]: {}\n    help: {}",
            self.file, self.line, self.col, self.severity, self.id, self.message, self.suggestion
        )
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the full report as a JSON document:
/// `{"diagnostics": [...], "errors": N, "warnings": M}`.
pub fn render_json(diags: &[Diag]) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"id\": \"{}\", \
             \"severity\": \"{}\", \"message\": \"{}\", \"suggestion\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.col,
            d.id,
            d.severity,
            json_escape(&d.message),
            json_escape(&d.suggestion),
        ));
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warn)
        .count();
    out.push_str(&format!(
        "\n  ],\n  \"errors\": {errors},\n  \"warnings\": {warnings}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_render_is_clickable() {
        let d = Diag {
            file: "crates/mem/src/kernel.rs".into(),
            line: 108,
            col: 23,
            id: "hash-container",
            severity: Severity::Error,
            message: "std HashMap".into(),
            suggestion: "use BTreeMap".into(),
        };
        let s = d.render_text();
        assert!(s.starts_with("crates/mem/src/kernel.rs:108:23: error[hash-container]:"));
        assert!(s.contains("help: use BTreeMap"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let d = Diag {
            file: "a\"b.rs".into(),
            line: 1,
            col: 2,
            id: "panic-site",
            severity: Severity::Warn,
            message: "line1\nline2".into(),
            suggestion: "s".into(),
        };
        let s = render_json(&[d]);
        assert!(s.contains("a\\\"b.rs"));
        assert!(s.contains("line1\\nline2"));
        assert!(s.contains("\"errors\": 0"));
        assert!(s.contains("\"warnings\": 1"));
    }

    #[test]
    fn empty_report() {
        let s = render_json(&[]);
        assert!(s.contains("\"diagnostics\": []") || s.contains("\"diagnostics\": [\n  ]"));
        assert!(s.contains("\"errors\": 0"));
    }
}
