//! The lightweight AST produced by [`crate::parser`].
//!
//! This is not a faithful Rust grammar — it is the minimal shape the
//! semantic rules need: items with names and types, function bodies as
//! expression trees, and byte-accurate spans on every node so diagnostics
//! anchor to real source positions and the span round-trip property tests
//! can verify the parser against the lexer.
//!
//! Every node carries a [`Span`] (`lo..hi` byte range plus the line/col of
//! its first token) and the index of its first token in the lexed stream
//! (`tok`), which the driver uses to consult the `#[cfg(test)]` mask.

/// Byte range of a node plus the position of its first token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub lo: usize,
    pub hi: usize,
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub const DUMMY: Span = Span {
        lo: 0,
        hi: 0,
        line: 0,
        col: 0,
    };

    /// Smallest span covering both inputs (line/col from the earlier one).
    pub fn to(self, other: Span) -> Span {
        let (first, _) = if self.lo <= other.lo {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            line: first.line,
            col: first.col,
        }
    }
}

/// A type as written in source, resolved no further than its path text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Type {
    pub kind: TypeKind,
    pub span: Span,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeKind {
    /// `a::b::C<D, E>` — segments plus generic arguments of the last one.
    Path { segs: Vec<String>, args: Vec<Type> },
    /// `&T` / `&mut T` (lifetimes dropped).
    Ref { mutable: bool, inner: Box<Type> },
    /// `(A, B, …)`.
    Tuple(Vec<Type>),
    /// `[T]` / `[T; N]` (length expression dropped).
    Slice(Box<Type>),
    /// Anything we do not model (fn pointers, `impl Trait`, macros…).
    Unknown,
}

impl Type {
    pub fn unknown(span: Span) -> Type {
        Type {
            kind: TypeKind::Unknown,
            span,
        }
    }

    /// The final path segment, seen through references: the name rules
    /// match against (`HashMap`, `SimTime`, a local alias…).
    pub fn head(&self) -> Option<&str> {
        match &self.kind {
            TypeKind::Path { segs, .. } => segs.last().map(String::as_str),
            TypeKind::Ref { inner, .. } => inner.head(),
            _ => None,
        }
    }

    /// Full path segments, seen through references.
    pub fn path_segs(&self) -> Option<&[String]> {
        match &self.kind {
            TypeKind::Path { segs, .. } => Some(segs),
            TypeKind::Ref { inner, .. } => inner.path_segs(),
            _ => None,
        }
    }
}

/// One enum variant (name is all the protocol check needs).
#[derive(Debug, Clone)]
pub struct Variant {
    pub name: String,
    pub span: Span,
    pub tok: usize,
}

/// A `name: Type` function parameter (patterns collapse to their first
/// binding identifier; `self` appears as the literal name `self`).
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: Option<Type>,
}

/// A function definition (free, method, or default trait method).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub params: Vec<Param>,
    pub ret: Option<Type>,
    pub body: Option<Block>,
    pub span: Span,
    pub tok: usize,
}

#[derive(Debug, Clone)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let <ident>[: ty] = init;` — pattern collapsed to its first binding.
    Let {
        name: Option<String>,
        ty: Option<Type>,
        init: Option<Expr>,
        span: Span,
    },
    /// Expression statement (with or without trailing `;`).
    Expr(Expr),
    /// A nested item inside a block (fn, struct, use…).
    Item(Box<Item>),
}

/// A match arm: the pattern is kept as its raw token index range (patterns
/// are matched textually by the rules that care), guard and body as exprs.
#[derive(Debug, Clone)]
pub struct Arm {
    pub pat_toks: (usize, usize),
    pub guard: Option<Expr>,
    pub body: Expr,
    pub span: Span,
}

#[derive(Debug, Clone)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
    /// Index of this node's first token in the lexed stream.
    pub tok: usize,
}

#[derive(Debug, Clone)]
pub enum ExprKind {
    /// Literal token (number, string, char).
    Lit(String),
    /// `a::b::c` (single identifiers included).
    Path(Vec<String>),
    /// `recv.name(args)` / `recv.name::<T>(args)`.
    MethodCall {
        recv: Box<Expr>,
        name: String,
        args: Vec<Expr>,
    },
    /// `callee(args)`.
    Call {
        callee: Box<Expr>,
        args: Vec<Expr>,
    },
    /// `recv.name` / `recv.0`.
    Field {
        recv: Box<Expr>,
        name: String,
    },
    /// `recv[index]`.
    Index {
        recv: Box<Expr>,
        index: Box<Expr>,
    },
    /// `lhs <op> rhs` for a binary operator (`+`, `*`, `==`, `>>`, …).
    Binary {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `lhs = rhs` / `lhs += rhs` / … (`op` includes the `=`).
    Assign {
        op: String,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// `!e`, `-e`, `*e`.
    Unary {
        op: String,
        expr: Box<Expr>,
    },
    /// `&e` / `&mut e`.
    Ref {
        mutable: bool,
        expr: Box<Expr>,
    },
    /// `e as T`.
    Cast {
        expr: Box<Expr>,
        ty: Type,
    },
    /// `e?`.
    Try(Box<Expr>),
    /// `for <ident> in iter { body }` — pattern collapsed to first binding.
    For {
        pat: Option<String>,
        iter: Box<Expr>,
        body: Block,
    },
    While {
        cond: Box<Expr>,
        body: Block,
    },
    Loop {
        body: Block,
    },
    If {
        cond: Box<Expr>,
        then: Block,
        els: Option<Box<Expr>>,
    },
    Match {
        scrutinee: Box<Expr>,
        arms: Vec<Arm>,
    },
    /// `|a, b| body` / `move |…| body`.
    Closure {
        params: Vec<Param>,
        body: Box<Expr>,
    },
    /// `Path { field: expr, .. }`.
    StructLit {
        path: Vec<String>,
        fields: Vec<(String, Expr)>,
    },
    /// `name!(…)` / `path::name! { … }` — arguments parsed best-effort as
    /// a comma-separated expression list (formatting strings etc. land as
    /// `Lit`s); unparseable tails are dropped.
    Macro {
        path: Vec<String>,
        args: Vec<Expr>,
    },
    Tuple(Vec<Expr>),
    Array(Vec<Expr>),
    Block(Block),
    Return(Option<Box<Expr>>),
    Break,
    Continue,
    /// `a..b` / `a..=b` (either side optional).
    Range {
        lo: Option<Box<Expr>>,
        hi: Option<Box<Expr>>,
    },
    /// Something the parser skipped over (balanced, but unmodeled).
    Unknown,
}

#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    pub span: Span,
    pub tok: usize,
}

#[derive(Debug, Clone)]
pub enum ItemKind {
    /// `use a::b::{c, d};` — one entry per leaf path.
    Use(Vec<Vec<String>>),
    /// `type Name = T;`
    TypeAlias {
        name: String,
        ty: Type,
    },
    /// `struct Name { field: T, … }` (tuple fields named `0`, `1`, …).
    Struct {
        name: String,
        fields: Vec<(String, Type)>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
    Static {
        name: String,
        mutable: bool,
        ty: Option<Type>,
    },
    Const {
        name: String,
    },
    Fn(FnDef),
    /// `impl [Trait for] Target { items }` — `target` is the self type's
    /// head name, `trait_` the implemented trait's head if any.
    Impl {
        target: Option<String>,
        trait_: Option<String>,
        items: Vec<Item>,
    },
    Trait {
        name: String,
        items: Vec<Item>,
    },
    Mod {
        name: String,
        items: Option<Vec<Item>>,
    },
    /// Item-position macro invocation: `thread_local! { … }`, `macro_rules!`…
    MacroInvoke {
        path: Vec<String>,
    },
    /// Anything else, skipped with balanced delimiters.
    Other,
}

/// A parsed source file.
#[derive(Debug, Clone, Default)]
pub struct File {
    pub items: Vec<Item>,
}

impl File {
    /// Depth-first walk over all items, including those nested in impls,
    /// traits, inline modules, and blocks inside function bodies.
    pub fn walk_items<'a>(&'a self, f: &mut dyn FnMut(&'a Item)) {
        fn visit<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a Item)) {
            for it in items {
                f(it);
                match &it.kind {
                    ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => visit(items, f),
                    ItemKind::Mod {
                        items: Some(items), ..
                    } => visit(items, f),
                    _ => {}
                }
            }
        }
        visit(&self.items, f);
    }
}
