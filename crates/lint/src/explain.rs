//! Rule documentation for `--explain <rule-id>`.
//!
//! Each entry answers the three questions a developer hitting a finding
//! actually has: why is this a hazard *in this workspace*, what does the
//! firing shape look like, and what is the sanctioned fix (including how
//! to suppress when the finding is a reviewed false positive).

use crate::rules;

/// One-line summary, used in SARIF rule metadata and `--explain` headers.
pub fn short_description(id: &str) -> Option<&'static str> {
    Some(match id {
        rules::HASH_CONTAINER => "std HashMap/HashSet has randomized iteration order",
        rules::WALL_CLOCK => "host-clock reads leak wall time into simulation logic",
        rules::UNSEEDED_RNG => "entropy-seeded RNG diverges between identical runs",
        rules::FLOAT_ACCUMULATE => "float sum/fold over an unordered map iterator",
        rules::PANIC_SITE => "panic family can abort the simulation from library code",
        rules::IO_UNWRAP => "unwrap/expect on an I/O result defeats fault injection",
        rules::NONDET_ITER => "iteration over a value that resolves to a hash container",
        rules::SIM_TIME_ARITH => "unchecked +/* on raw sim-time microseconds",
        rules::FLOAT_ACCUM_LOOP => "float accumulator updated inside a hash-iter loop",
        rules::PAR_STATIC_MUT => "static mut in a crate that runs under the thread fan-out",
        rules::PAR_INTERIOR_MUT => "Cell/RefCell in a crate that runs under the thread fan-out",
        rules::PAR_THREAD_LOCAL => "thread_local! in a crate that runs under the thread fan-out",
        rules::EVENT_PROTOCOL => "ObsEvent variant never emitted or funneled to a wildcard",
        _ => return None,
    })
}

/// Full explanation for `--explain <id>`, or `None` for an unknown id.
pub fn explain(id: &str) -> Option<String> {
    let body = match id {
        rules::HASH_CONTAINER => {
            "Why: std's hashers are seeded per-process, so HashMap/HashSet iteration\n\
             order differs between runs. Any output derived from that order breaks\n\
             the byte-identical replay guarantee the paper's experiments depend on.\n\
             \n\
             Fires on:\n\
             \x20   use std::collections::HashMap;\n\
             \x20   struct Residency { frames: HashMap<FrameId, Slot> }\n\
             \n\
             Fix: use BTreeMap/BTreeSet (or an index-ordered map). Suppress a\n\
             reviewed exception with `// agp-lint: allow(hash-container): <why>`."
        }
        rules::WALL_CLOCK => {
            "Why: `Instant::now()`/`SystemTime` read the host clock. Folding host\n\
             time into scheduling or paging decisions makes runs unrepeatable and\n\
             invalidates recorded traces.\n\
             \n\
             Fires on:\n\
             \x20   let t = Instant::now();      // in a simulation crate\n\
             \n\
             Fix: derive all time from agp_sim::SimTime/SimDur. Only the sanctioned\n\
             crates (agp-perf, agp-cli, agp-bench, agp-lint) may claim the crate-\n\
             level `wall-clock` allow; everywhere else use a site allow with a\n\
             written reason."
        }
        rules::UNSEEDED_RNG => {
            "Why: `thread_rng()`, `OsRng`, `from_entropy()` and friends draw host\n\
             entropy, so two runs with the same master seed diverge.\n\
             \n\
             Fires on:\n\
             \x20   let mut rng = rand::thread_rng();\n\
             \n\
             Fix: fork a stream from agp_sim::SimRng (seeded from the experiment's\n\
             master seed). Suppress with `// agp-lint: allow(unseeded-rng): <why>`."
        }
        rules::FLOAT_ACCUMULATE => {
            "Why: float addition is not associative; summing a hash iterator's\n\
             values accumulates in a randomized order, so the total changes between\n\
             runs even though the inputs are identical.\n\
             \n\
             Fires on:\n\
             \x20   m.values().sum::<f64>()      // m: HashMap<_, f64>\n\
             \n\
             Fix: iterate a deterministic container, or collect-and-sort first."
        }
        rules::PANIC_SITE => {
            "Why: `unwrap`/`expect`/`panic!` in library code aborts the whole\n\
             simulation, including the fault-injection campaigns that expect to\n\
             observe and recover from failures.\n\
             \n\
             Fires on:\n\
             \x20   let slot = table.get(&frame).unwrap();\n\
             \n\
             Fix: return a typed error. Where the invariant is locally provable,\n\
             keep it with `// agp-lint: allow(panic-site): <why>`."
        }
        rules::IO_UNWRAP => {
            "Why: disk and file errors are expected at runtime — the chaos rig\n\
             injects them deliberately. Unwrapping an I/O result turns a planned\n\
             fault into a process abort.\n\
             \n\
             Fires on:\n\
             \x20   let text = std::fs::read_to_string(path).unwrap();\n\
             \n\
             Fix: propagate with `?` into a typed error so retry/backoff and\n\
             degradation policies can observe the failure."
        }
        rules::NONDET_ITER => {
            "Why: the AST pass resolves local variables, struct fields, function\n\
             returns, and `type` aliases across the workspace; iterating anything\n\
             that bottoms out in HashMap/HashSet visits entries in a per-process\n\
             random order, which silently breaks replay. Unlike `hash-container`\n\
             (which flags the spelled-out type), this rule sees through names:\n\
             \n\
             Fires on:\n\
             \x20   type Residency = HashMap<FrameId, Slot>;   // possibly another crate\n\
             \x20   for slot in residency.values() { ... }      // <- flagged here\n\
             \n\
             Fix: make the underlying container deterministic (BTreeMap), or\n\
             collect-and-sort before iterating. Suppress a reviewed exception with\n\
             `// agp-lint: allow(nondet-iter): <why>`."
        }
        rules::SIM_TIME_ARITH => {
            "Why: raw microsecond values escaped from SimTime/SimDur (via `.as_us()`\n\
             or `.0`) are plain integers; unchecked `+`/`*` on them wraps silently\n\
             in release builds and corrupts the simulated clock — the worst kind of\n\
             bug, because the run keeps going with a poisoned timeline. The pass\n\
             taints escaped values through local bindings and also flags raw\n\
             accumulators that later feed a SimTime/SimDur constructor.\n\
             \n\
             Fires on:\n\
             \x20   let total = a.as_us() + b.as_us();\n\
             \x20   us += e.len * params.page_transfer_us;  // later: SimDur::from_us(us)\n\
             \n\
             Fix: use `checked_add`/`checked_mul` (propagating the error) or\n\
             `saturating_add`/`saturating_mul`. An explicit `as` cast marks a\n\
             reviewed narrowing and is not flagged."
        }
        rules::FLOAT_ACCUM_LOOP => {
            "Why: the loop form of `float-accumulate` — a floating-point\n\
             accumulator updated with `+=` inside a loop whose iteration order\n\
             comes from a hash container. The dataflow pass tracks the accumulator\n\
             variable across the loop body, so splitting the sum over several\n\
             statements does not hide it.\n\
             \n\
             Fires on:\n\
             \x20   let mut total = 0.0;\n\
             \x20   for v in residency.values() { total += v.cost; }\n\
             \n\
             Fix: iterate a deterministic container, or collect values and sort\n\
             before accumulating."
        }
        rules::PAR_STATIC_MUT => {
            "Why: this crate runs under the live thread fan-out (`agp run`/`agp\n\
             report --jobs N` shard simulations across a crossbeam worker pool);\n\
             a `static mut` is a guaranteed data race on the workers, and unsafe\n\
             to the borrow checker today.\n\
             \n\
             Fires on:\n\
             \x20   static mut FRAME_COUNTER: u64 = 0;   // in any FANOUT_CRATES member\n\
             \n\
             Fix: use an atomic, a lock, or thread the state through explicit\n\
             arguments."
        }
        rules::PAR_INTERIOR_MUT => {
            "Why: `Cell`/`RefCell` are single-threaded interior mutability; shared\n\
             across the worker-pool fan-out they either fail to compile (best\n\
             case) or, smuggled behind unsafe, race. Flagged only in fan-out\n\
             crates so single-threaded convenience elsewhere stays legal.\n\
             \n\
             Fires on:\n\
             \x20   struct Tile { hot: RefCell<Vec<FrameId>> }   // in a fan-out crate\n\
             \n\
             Fix: prefer &mut plumbing; if the state must be shared, use an atomic\n\
             or a lock (crossbeam's AtomicCell is fine and not flagged)."
        }
        rules::PAR_THREAD_LOCAL => {
            "Why: `thread_local!` state silently forks per pool worker, so\n\
             results depend on which thread ran which experiment shard —\n\
             nondeterminism that only shows up at `--jobs N` with N > 1.\n\
             \n\
             Fires on:\n\
             \x20   thread_local! { static SCRATCH: RefCell<Vec<u64>> = ... }\n\
             \n\
             Fix: keep per-thread scratch out of fan-out crates, or merge it\n\
             deterministically the way agp-perf's recorder registry does."
        }
        rules::EVENT_PROTOCOL => {
            "Why: the ObsEvent enum is the observability contract between the\n\
             simulation crates (emitters) and agp-explain (consumer). Both rot\n\
             modes compile cleanly: a variant nobody constructs is dead protocol\n\
             surface, and a variant the explain pass only reaches through `_ =>`\n\
             is telemetry that never feeds the analysis it was added for. The\n\
             cross-crate pass verifies every variant is constructed somewhere\n\
             outside the explain side and named somewhere inside it; match\n\
             patterns do not count as emissions.\n\
             \n\
             Fires on: (anchored at the variant's definition site)\n\
             \x20   pub enum ObsEvent { ..., GangPreempt { .. } }  // never emitted,\n\
             \x20                                                  // or only `_ =>`ed\n\
             \n\
             Fix: emit the variant from the subsystem it describes, handle it\n\
             explicitly in agp-explain (an intentional ignore should still name\n\
             it), or retire it together with its consumers."
        }
        _ => return None,
    };
    let short = short_description(id)?;
    Some(format!("{id}: {short}\n\n{body}\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::ALL_IDS;

    #[test]
    fn every_rule_id_has_an_explanation() {
        for id in ALL_IDS {
            let text = explain(id).unwrap_or_else(|| panic!("missing explain for {id}"));
            assert!(text.starts_with(id), "{id}");
            assert!(text.contains("Fires on:"), "{id}");
            assert!(text.contains("Fix:"), "{id}");
            assert!(short_description(id).is_some(), "{id}");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(explain("no-such-rule").is_none());
        assert!(short_description("no-such-rule").is_none());
    }
}
