//! Deterministic span-contract sweep: random programs from the same
//! grammar as `proptests.rs`, driven by a fixed LCG so the property stays
//! exercised in offline builds that drop proptest targets (the same
//! pairing agp-mem uses for `invariants.rs` / `proptests.rs`).
//!
//! The contract under test is the one [`agp_lint::ast`] documents: every
//! token's `text` is the exact source slice at its `offset`, with 1-based
//! line/col that agree with a recount of the prefix; and every AST node's
//! span is in-bounds, covers its anchor token `tok`, and carries that
//! token's line/col.

use agp_lint::ast::{Arm, Block, Expr, ExprKind, File, Item, ItemKind, Stmt};
use agp_lint::{lexer, parser};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const IDENTS: [&str; 6] = ["a", "b", "frame", "slot", "gang", "x2"];

fn gen_expr(rng: &mut Lcg, depth: u32) -> String {
    if depth == 0 {
        return match rng.pick(2) {
            0 => rng.pick(1000).to_string(),
            _ => IDENTS[rng.pick(IDENTS.len() as u64) as usize].to_string(),
        };
    }
    let a = gen_expr(rng, depth - 1);
    let b = gen_expr(rng, depth - 1);
    let id = IDENTS[rng.pick(IDENTS.len() as u64) as usize];
    match rng.pick(10) {
        0 => format!("({a} + {b})"),
        1 => format!("{a} * {b}"),
        2 => format!("{id}({a}, {b})"),
        3 => format!("{a}.{id}({b})"),
        4 => format!("&{a}"),
        5 => format!("({a} as u64)"),
        6 => format!("[{a}, {b}]"),
        7 => format!("({a}, {b})"),
        8 => format!("{a}..{b}"),
        // Parenthesized: a bare if-else is not a legal operand/receiver
        // in real Rust either.
        _ => format!("(if {a} > {b} {{ {a} }} else {{ {b} }})"),
    }
}

fn gen_stmt(rng: &mut Lcg) -> String {
    let id = IDENTS[rng.pick(IDENTS.len() as u64) as usize];
    let depth = 1 + (rng.pick(2) as u32);
    let e = gen_expr(rng, depth);
    match rng.pick(5) {
        0 => format!("let {id} = {e};"),
        1 => format!("{e};"),
        2 => format!("if {e} == 0 {{ {id} += 1; }}"),
        3 => format!("for {id} in {} {{ {e}; }}", gen_expr(rng, 1)),
        _ => format!("while {id} < 3 {{ {e}; }}"),
    }
}

fn gen_program(rng: &mut Lcg) -> String {
    let n = 1 + rng.pick(4);
    let stmts: Vec<String> = (0..n).map(|_| gen_stmt(rng)).collect();
    format!(
        "fn torture(a: u64, b: u64) -> u64 {{\n    {}\n    a\n}}\n",
        stmts.join("\n    ")
    )
}

/// Lexer half of the contract: exact slices and honest line/col.
fn check_lex_roundtrip(src: &str) {
    let lexed = lexer::lex(src);
    let mut prev_end = 0usize;
    for t in &lexed.toks {
        assert!(t.offset >= prev_end, "tokens overlap in {src:?}");
        assert!(t.end() <= src.len(), "token past EOF in {src:?}");
        assert_eq!(
            &src[t.offset..t.end()],
            t.text,
            "token text is not the source slice in {src:?}"
        );
        let prefix = &src[..t.offset];
        let line = 1 + prefix.matches('\n').count() as u32;
        let col = (t.offset - prefix.rfind('\n').map_or(0, |i| i + 1)) as u32 + 1;
        assert_eq!((t.line, t.col), (line, col), "line/col drift in {src:?}");
        prev_end = t.end();
    }
}

fn check_expr(e: &Expr, src: &str, toks: &[lexer::Tok]) {
    assert!(e.span.lo <= e.span.hi && e.span.hi <= src.len(), "{src:?}");
    let anchor = toks
        .get(e.tok)
        .unwrap_or_else(|| panic!("tok index out of range in {src:?}"));
    assert!(
        e.span.lo <= anchor.offset && anchor.end() <= e.span.hi.max(anchor.end()),
        "span does not cover its anchor token in {src:?}"
    );
    assert_eq!(
        (e.span.line, e.span.col),
        (anchor.line, anchor.col),
        "span line/col is not the anchor token's in {src:?}"
    );
}

/// Visit every sub-expression of `e` (not `e` itself).
fn walk_expr(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    fn go(x: &Expr, f: &mut dyn FnMut(&Expr)) {
        f(x);
        walk_expr(x, f);
    }
    match &e.kind {
        ExprKind::MethodCall { recv, args, .. } => {
            go(recv, f);
            for a in args {
                go(a, f);
            }
        }
        ExprKind::Call { callee, args } => {
            go(callee, f);
            for a in args {
                go(a, f);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            go(lhs, f);
            go(rhs, f);
        }
        ExprKind::Field { recv, .. } => go(recv, f),
        ExprKind::Index { recv, index } => {
            go(recv, f);
            go(index, f);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Ref { expr, .. }
        | ExprKind::Try(expr)
        | ExprKind::Cast { expr, .. } => go(expr, f),
        ExprKind::For { iter, body, .. } => {
            go(iter, f);
            walk_block(body, f);
        }
        ExprKind::While { cond, body } => {
            go(cond, f);
            walk_block(body, f);
        }
        ExprKind::Loop { body } => walk_block(body, f),
        ExprKind::If { cond, then, els } => {
            go(cond, f);
            walk_block(then, f);
            if let Some(els) = els {
                go(els, f);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            go(scrutinee, f);
            for Arm { guard, body, .. } in arms {
                if let Some(g) = guard {
                    go(g, f);
                }
                go(body, f);
            }
        }
        ExprKind::Closure { body, .. } => go(body, f),
        ExprKind::StructLit { fields, .. } => {
            for (_, v) in fields {
                go(v, f);
            }
        }
        ExprKind::Macro { args, .. } | ExprKind::Tuple(args) | ExprKind::Array(args) => {
            for a in args {
                go(a, f);
            }
        }
        ExprKind::Return(Some(v)) => go(v, f),
        ExprKind::Range { lo, hi } => {
            if let Some(lo) = lo {
                go(lo, f);
            }
            if let Some(hi) = hi {
                go(hi, f);
            }
        }
        ExprKind::Block(b) => walk_block(b, f),
        _ => {}
    }
}

fn walk_block(b: &Block, f: &mut dyn FnMut(&Expr)) {
    for s in &b.stmts {
        match s {
            Stmt::Let { init: Some(e), .. } => {
                f(e);
                walk_expr(e, f);
            }
            Stmt::Expr(e) => {
                f(e);
                walk_expr(e, f);
            }
            Stmt::Item(it) => walk_item(it, f),
            _ => {}
        }
    }
}

fn walk_item(it: &Item, f: &mut dyn FnMut(&Expr)) {
    match &it.kind {
        ItemKind::Fn(fun) => {
            if let Some(body) = &fun.body {
                walk_block(body, f);
            }
        }
        ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => {
            for sub in items {
                walk_item(sub, f);
            }
        }
        ItemKind::Mod {
            items: Some(items), ..
        } => {
            for sub in items {
                walk_item(sub, f);
            }
        }
        _ => {}
    }
}

fn check_file(src: &str) {
    check_lex_roundtrip(src);
    let lexed = lexer::lex(src);
    let (file, issues) = parser::parse(&lexed.toks);
    assert!(
        issues.is_empty(),
        "generated program must parse: {src:?} -> {issues:?}"
    );
    let check = &mut |e: &Expr| check_expr(e, src, &lexed.toks);
    let f: &File = &file;
    for it in &f.items {
        assert!(it.span.lo <= it.span.hi && it.span.hi <= src.len());
        walk_item(it, check);
    }
}

#[test]
fn lcg_programs_satisfy_span_contract() {
    let mut rng = Lcg(0xA6B0_57A7_1C00_5EED);
    for _ in 0..300 {
        check_file(&gen_program(&mut rng));
    }
}

#[test]
fn lcg_ascii_soup_lexes_with_exact_spans() {
    // The lexer must keep the span contract (and not panic) on arbitrary
    // printable input — unterminated strings, stray quotes, half-comments.
    let mut rng = Lcg(0x005E_ED0F_ACE5_0DA5);
    let alphabet: Vec<char> = (' '..='~').chain("\n\t".chars()).collect();
    for _ in 0..300 {
        let n = rng.pick(120) as usize;
        let s: String = (0..n)
            .map(|_| alphabet[rng.pick(alphabet.len() as u64) as usize])
            .collect();
        check_lex_roundtrip(&s);
    }
}
