//! Acceptance gate: the recursive-descent parser must handle every `.rs`
//! file in the workspace — all package `src/` trees plus root `tests/`,
//! `examples/`, and the lint fixtures' torture file — with zero issues.

use std::fs;
use std::path::{Path, PathBuf};

use agp_lint::{lexer, parser};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            walk(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

#[test]
fn every_workspace_source_parses_without_issues() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file() && root.join("crates").is_dir(),
        "workspace root not found at {root:?}"
    );
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples", "benches"] {
        walk(&root.join(dir), &mut files);
    }
    assert!(
        files.len() > 50,
        "expected a real workspace, found {} files",
        files.len()
    );
    let mut failures = Vec::new();
    let mut item_total = 0usize;
    for f in &files {
        let src = fs::read_to_string(f).expect("readable");
        let lexed = lexer::lex(&src);
        let (file, issues) = parser::parse(&lexed.toks);
        item_total += file.items.len();
        if !issues.is_empty() {
            failures.push(format!(
                "{}: {}",
                f.strip_prefix(&root).unwrap_or(f).display(),
                issues
                    .iter()
                    .take(3)
                    .map(|i| format!("{}:{} {}", i.line, i.col, i.msg))
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} files failed to parse cleanly:\n{}",
        failures.len(),
        files.len(),
        failures.join("\n")
    );
    assert!(item_total > 500, "suspiciously few items: {item_total}");
}
