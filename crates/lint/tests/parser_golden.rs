//! Golden test: parse the torture fixture and pin the exact AST outline.
//!
//! The outline is a stable, human-reviewable rendering of every item,
//! statement, and expression node the parser produced (with source lines),
//! so any parser change that reshapes the tree shows up as a reviewable
//! diff. Regenerate with `UPDATE_GOLDENS=1 cargo test -p agp-lint --test
//! parser_golden` and review the diff before committing.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use agp_lint::ast::{Block, Expr, ExprKind, File, Item, ItemKind, Stmt, Type, TypeKind};
use agp_lint::{lexer, parser};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn ty(t: &Type) -> String {
    match &t.kind {
        TypeKind::Path { segs, args } => {
            let mut s = segs.join("::");
            if !args.is_empty() {
                let inner: Vec<String> = args.iter().map(ty).collect();
                let _ = write!(s, "<{}>", inner.join(", "));
            }
            s
        }
        TypeKind::Ref {
            mutable: true,
            inner,
        } => format!("&mut {}", ty(inner)),
        TypeKind::Ref {
            mutable: false,
            inner,
        } => format!("&{}", ty(inner)),
        TypeKind::Tuple(parts) => {
            let inner: Vec<String> = parts.iter().map(ty).collect();
            format!("({})", inner.join(", "))
        }
        TypeKind::Slice(inner) => format!("[{}]", ty(inner)),
        TypeKind::Unknown => "?".to_string(),
    }
}

fn opt_ty(t: &Option<Type>) -> String {
    t.as_ref().map(ty).unwrap_or_else(|| "?".to_string())
}

fn line(out: &mut String, depth: usize, text: &str) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(text);
    out.push('\n');
}

fn dump_expr(e: &Expr, depth: usize, out: &mut String) {
    let head = match &e.kind {
        ExprKind::Lit(t) => format!("Lit {t}"),
        ExprKind::Path(segs) => format!("Path {}", segs.join("::")),
        ExprKind::MethodCall { name, .. } => format!("Method .{name}"),
        ExprKind::Call { .. } => "Call".to_string(),
        ExprKind::Field { name, .. } => format!("Field .{name}"),
        ExprKind::Index { .. } => "Index".to_string(),
        ExprKind::Binary { op, .. } => format!("Binary {op}"),
        ExprKind::Assign { op, .. } => format!("Assign {op}"),
        ExprKind::Unary { op, .. } => format!("Unary {op}"),
        ExprKind::Ref { mutable, .. } => {
            format!("Ref{}", if *mutable { " mut" } else { "" })
        }
        ExprKind::Cast { ty: t, .. } => format!("Cast as {}", ty(t)),
        ExprKind::Try(_) => "Try".to_string(),
        ExprKind::For { pat, .. } => {
            format!("For {}", pat.as_deref().unwrap_or("_"))
        }
        ExprKind::While { .. } => "While".to_string(),
        ExprKind::Loop { .. } => "Loop".to_string(),
        ExprKind::If { .. } => "If".to_string(),
        ExprKind::Match { arms, .. } => format!("Match arms={}", arms.len()),
        ExprKind::Closure { params, .. } => format!("Closure params={}", params.len()),
        ExprKind::StructLit { path, fields } => {
            let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
            format!("StructLit {} {{{}}}", path.join("::"), names.join(", "))
        }
        ExprKind::Macro { path, args } => {
            format!("Macro {}! args={}", path.join("::"), args.len())
        }
        ExprKind::Tuple(parts) => format!("Tuple len={}", parts.len()),
        ExprKind::Array(parts) => format!("Array len={}", parts.len()),
        ExprKind::Block(_) => "Block".to_string(),
        ExprKind::Return(Some(_)) => "Return value".to_string(),
        ExprKind::Return(None) => "Return".to_string(),
        ExprKind::Break => "Break".to_string(),
        ExprKind::Continue => "Continue".to_string(),
        ExprKind::Range { lo, hi } => format!(
            "Range {}..{}",
            if lo.is_some() { "lo" } else { "" },
            if hi.is_some() { "hi" } else { "" }
        ),
        ExprKind::Unknown => "Unknown".to_string(),
    };
    line(out, depth, &format!("{head} @{}", e.span.line));
    match &e.kind {
        ExprKind::MethodCall { recv, args, .. } => {
            dump_expr(recv, depth + 1, out);
            for a in args {
                dump_expr(a, depth + 1, out);
            }
        }
        ExprKind::Call { callee, args } => {
            dump_expr(callee, depth + 1, out);
            for a in args {
                dump_expr(a, depth + 1, out);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            dump_expr(lhs, depth + 1, out);
            dump_expr(rhs, depth + 1, out);
        }
        ExprKind::Field { recv, .. } => dump_expr(recv, depth + 1, out),
        ExprKind::Index { recv, index } => {
            dump_expr(recv, depth + 1, out);
            dump_expr(index, depth + 1, out);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Ref { expr, .. }
        | ExprKind::Try(expr)
        | ExprKind::Cast { expr, .. } => dump_expr(expr, depth + 1, out),
        ExprKind::For { iter, body, .. } => {
            dump_expr(iter, depth + 1, out);
            dump_block(body, depth + 1, out);
        }
        ExprKind::While { cond, body } => {
            dump_expr(cond, depth + 1, out);
            dump_block(body, depth + 1, out);
        }
        ExprKind::Loop { body } => dump_block(body, depth + 1, out),
        ExprKind::If { cond, then, els } => {
            dump_expr(cond, depth + 1, out);
            dump_block(then, depth + 1, out);
            if let Some(els) = els {
                dump_expr(els, depth + 1, out);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            dump_expr(scrutinee, depth + 1, out);
            for arm in arms {
                line(out, depth + 1, &format!("Arm @{}", arm.span.line));
                if let Some(g) = &arm.guard {
                    dump_expr(g, depth + 2, out);
                }
                dump_expr(&arm.body, depth + 2, out);
            }
        }
        ExprKind::Closure { body, .. } => dump_expr(body, depth + 1, out),
        ExprKind::StructLit { fields, .. } => {
            for (_, v) in fields {
                dump_expr(v, depth + 1, out);
            }
        }
        ExprKind::Macro { args, .. } | ExprKind::Tuple(args) | ExprKind::Array(args) => {
            for a in args {
                dump_expr(a, depth + 1, out);
            }
        }
        ExprKind::Return(Some(v)) => dump_expr(v, depth + 1, out),
        ExprKind::Range { lo, hi } => {
            if let Some(lo) = lo {
                dump_expr(lo, depth + 1, out);
            }
            if let Some(hi) = hi {
                dump_expr(hi, depth + 1, out);
            }
        }
        ExprKind::Block(b) => dump_block(b, depth + 1, out),
        _ => {}
    }
}

fn dump_block(b: &Block, depth: usize, out: &mut String) {
    for s in &b.stmts {
        match s {
            Stmt::Let {
                name,
                ty: t,
                init,
                span,
            } => {
                let n = name.as_deref().unwrap_or("_");
                let annot = t
                    .as_ref()
                    .map(|t| format!(": {}", ty(t)))
                    .unwrap_or_default();
                line(out, depth, &format!("Let {n}{annot} @{}", span.line));
                if let Some(init) = init {
                    dump_expr(init, depth + 1, out);
                }
            }
            Stmt::Expr(e) => dump_expr(e, depth, out),
            Stmt::Item(it) => dump_item(it, depth, out),
        }
    }
}

fn dump_item(it: &Item, depth: usize, out: &mut String) {
    match &it.kind {
        ItemKind::Use(paths) => {
            let leaves: Vec<String> = paths.iter().map(|p| p.join("::")).collect();
            line(
                out,
                depth,
                &format!("Use [{}] @{}", leaves.join(", "), it.span.line),
            );
        }
        ItemKind::TypeAlias { name, ty: t } => {
            line(
                out,
                depth,
                &format!("TypeAlias {name} = {} @{}", ty(t), it.span.line),
            );
        }
        ItemKind::Struct { name, fields } => {
            let fs: Vec<String> = fields
                .iter()
                .map(|(n, t)| format!("{n}: {}", ty(t)))
                .collect();
            line(
                out,
                depth,
                &format!("Struct {name} {{{}}} @{}", fs.join(", "), it.span.line),
            );
        }
        ItemKind::Enum { name, variants } => {
            let vs: Vec<String> = variants
                .iter()
                .map(|v| format!("{} @{}", v.name, v.span.line))
                .collect();
            line(
                out,
                depth,
                &format!("Enum {name} [{}] @{}", vs.join(", "), it.span.line),
            );
        }
        ItemKind::Static {
            name,
            mutable,
            ty: t,
        } => {
            line(
                out,
                depth,
                &format!(
                    "Static{} {name}: {} @{}",
                    if *mutable { " mut" } else { "" },
                    opt_ty(t),
                    it.span.line
                ),
            );
        }
        ItemKind::Const { name } => {
            line(out, depth, &format!("Const {name} @{}", it.span.line));
        }
        ItemKind::Fn(f) => {
            let ps: Vec<String> = f
                .params
                .iter()
                .map(|p| format!("{}: {}", p.name, opt_ty(&p.ty)))
                .collect();
            let ret = f
                .ret
                .as_ref()
                .map(|t| format!(" -> {}", ty(t)))
                .unwrap_or_default();
            line(
                out,
                depth,
                &format!("Fn {}({}){} @{}", f.name, ps.join(", "), ret, f.span.line),
            );
            if let Some(body) = &f.body {
                dump_block(body, depth + 1, out);
            }
        }
        ItemKind::Impl {
            target,
            trait_,
            items,
        } => {
            let t = target.as_deref().unwrap_or("?");
            let head = match trait_ {
                Some(tr) => format!("Impl {tr} for {t}"),
                None => format!("Impl {t}"),
            };
            line(out, depth, &format!("{head} @{}", it.span.line));
            for sub in items {
                dump_item(sub, depth + 1, out);
            }
        }
        ItemKind::Trait { name, items } => {
            line(out, depth, &format!("Trait {name} @{}", it.span.line));
            for sub in items {
                dump_item(sub, depth + 1, out);
            }
        }
        ItemKind::Mod { name, items } => {
            line(out, depth, &format!("Mod {name} @{}", it.span.line));
            if let Some(items) = items {
                for sub in items {
                    dump_item(sub, depth + 1, out);
                }
            }
        }
        ItemKind::MacroInvoke { path } => {
            line(
                out,
                depth,
                &format!("MacroInvoke {}! @{}", path.join("::"), it.span.line),
            );
        }
        ItemKind::Other => line(out, depth, &format!("Other @{}", it.span.line)),
    }
}

fn dump_file(f: &File) -> String {
    let mut out = String::new();
    for it in &f.items {
        dump_item(it, 0, &mut out);
    }
    out
}

#[test]
fn torture_ast_outline_matches_golden() {
    let dir = fixtures();
    let src = fs::read_to_string(dir.join("torture.rs")).expect("torture fixture readable");
    let lexed = lexer::lex(&src);
    let (file, issues) = parser::parse(&lexed.toks);
    assert!(
        issues.is_empty(),
        "torture fixture must parse cleanly: {issues:?}"
    );
    let got = dump_file(&file);
    let golden_path = dir.join("torture.golden");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::write(&golden_path, &got).expect("golden writable");
    }
    let want = fs::read_to_string(&golden_path)
        .expect("golden missing — regenerate with UPDATE_GOLDENS=1");
    assert_eq!(
        got, want,
        "AST outline drifted from fixtures/torture.golden; rerun with \
         UPDATE_GOLDENS=1 and review the diff before committing"
    );
}
