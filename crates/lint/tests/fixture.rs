//! Integration tests: the seeded fixture trips every hazard class, and the
//! cleaned workspace itself lints clean. The second test is the acceptance
//! gate — it means `cargo test` fails if anyone reintroduces a hazard
//! without a documented suppression.

use std::path::{Path, PathBuf};

use agp_lint::{
    exit_code, lint_package_dir, lint_paths, lint_workspace, render_json, rules, Severity,
};

fn fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/hazards.rs")
}

fn fixture_pkg(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn fixture_trips_every_hazard_class() {
    let diags = lint_paths(&[fixture()]).expect("fixture readable");
    for id in rules::ALL_IDS {
        assert!(
            diags.iter().any(|d| d.id == id),
            "expected a {id} finding in the fixture; got: {:#?}",
            diags
        );
    }
    // The run must fail CI: errors present, so non-zero even without
    // --deny-warnings.
    assert_eq!(exit_code(&diags, false), 1);
}

#[test]
fn fixture_findings_are_exactly_the_marked_lines() {
    let diags = lint_paths(&[fixture()]).expect("fixture readable");
    let got: Vec<(&str, u32)> = diags.iter().map(|d| (d.id, d.line)).collect();
    let expect: Vec<(&str, u32)> = vec![
        (rules::HASH_CONTAINER, 5),
        (rules::HASH_CONTAINER, 9),
        (rules::WALL_CLOCK, 13),
        (rules::WALL_CLOCK, 14),
        (rules::UNSEEDED_RNG, 20),
        (rules::HASH_CONTAINER, 24),
        (rules::FLOAT_ACCUMULATE, 26),
        (rules::PANIC_SITE, 30),
        (rules::IO_UNWRAP, 40),
    ];
    assert_eq!(got, expect);
}

#[test]
fn fixture_suppression_and_test_module_do_not_fire() {
    let diags = lint_paths(&[fixture()]).expect("fixture readable");
    // The suppressed sites: the documented `expect` (line 35) and the
    // panic-site half of the io-unwrap hazard (line 40, where only the
    // io-unwrap id may fire — suppression is per-id).
    assert!(
        !diags
            .iter()
            .any(|d| d.id == rules::PANIC_SITE && d.line > 30),
        "suppressed panic-site fired: {diags:#?}"
    );
    // Nothing inside the #[cfg(test)] module (lines >= 43).
    assert!(
        diags.iter().all(|d| d.line < 43),
        "test module leaked: {diags:#?}"
    );
}

#[test]
fn json_report_contains_structured_fields() {
    let diags = lint_paths(&[fixture()]).expect("fixture readable");
    let json = render_json(&diags);
    assert!(json.contains("\"id\": \"hash-container\""));
    assert!(json.contains("\"severity\": \"error\""));
    assert!(json.contains("\"line\": 13"));
    assert!(json.contains("\"suggestion\""));
    assert!(json.contains(&format!(
        "\"errors\": {}",
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    )));
}

#[test]
fn unsanctioned_wall_clock_allow_is_ignored() {
    let diags = lint_package_dir(&fixture_pkg("rogue-sim")).expect("fixture readable");
    assert!(
        diags.iter().any(|d| d.id == rules::WALL_CLOCK),
        "wall-clock must fire despite the crate-level allow: {diags:#?}"
    );
    assert_eq!(exit_code(&diags, false), 1, "rogue crate must fail CI");
}

#[test]
fn sanctioned_crate_keeps_its_wall_clock_allow() {
    let diags = lint_package_dir(&fixture_pkg("sanctioned-sim")).expect("fixture readable");
    assert!(
        diags.is_empty(),
        "identical source under a sanctioned name lints clean: {diags:#?}"
    );
}

#[test]
fn cleaned_workspace_lints_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file() && root.join("crates").is_dir(),
        "workspace root not found at {root:?}"
    );
    let diags = lint_workspace(&root).expect("workspace readable");
    assert!(
        diags.is_empty(),
        "workspace must lint clean (fix or suppress):\n{}",
        diags
            .iter()
            .map(|d| d.render_text())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
