//! Integration tests: the seeded fixture trips every hazard class, and the
//! cleaned workspace itself lints clean. The second test is the acceptance
//! gate — it means `cargo test` fails if anyone reintroduces a hazard
//! without a documented suppression.

use std::path::{Path, PathBuf};

use agp_lint::{
    exit_code, lint_package_dir, lint_paths, lint_workspace, render_json, rules, Severity,
};

fn fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/hazards.rs")
}

fn fixture_pkg(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn fixture_trips_every_hazard_class() {
    let diags = lint_paths(&[fixture()]).expect("fixture readable");
    // Parallel-readiness and protocol rules need crate/workspace context and
    // cannot fire from a loose file; every file-scoped rule must trip.
    for id in rules::FILE_RULE_IDS {
        assert!(
            diags.iter().any(|d| d.id == id),
            "expected a {id} finding in the fixture; got: {:#?}",
            diags
        );
    }
    // The run must fail CI: errors present, so non-zero even without
    // --deny-warnings.
    assert_eq!(exit_code(&diags, false), 1);
}

#[test]
fn fixture_findings_are_exactly_the_marked_lines() {
    let diags = lint_paths(&[fixture()]).expect("fixture readable");
    let got: Vec<(&str, u32)> = diags.iter().map(|d| (d.id, d.line)).collect();
    let expect: Vec<(&str, u32)> = vec![
        (rules::HASH_CONTAINER, 5),
        (rules::HASH_CONTAINER, 9),
        (rules::WALL_CLOCK, 13),
        (rules::WALL_CLOCK, 14),
        (rules::UNSEEDED_RNG, 20),
        (rules::HASH_CONTAINER, 24),
        (rules::NONDET_ITER, 26),
        (rules::FLOAT_ACCUMULATE, 26),
        (rules::PANIC_SITE, 30),
        (rules::IO_UNWRAP, 40),
        (rules::HASH_CONTAINER, 43),
        (rules::NONDET_ITER, 47),
        (rules::SIM_TIME_ARITH, 54),
        (rules::SIM_TIME_ARITH, 60),
        (rules::HASH_CONTAINER, 65),
        (rules::NONDET_ITER, 67),
        (rules::FLOAT_ACCUM_LOOP, 68),
    ];
    assert_eq!(got, expect);
}

#[test]
fn fixture_suppression_and_test_module_do_not_fire() {
    let diags = lint_paths(&[fixture()]).expect("fixture readable");
    // The suppressed sites: the documented `expect` (line 35) and the
    // panic-site half of the io-unwrap hazard (line 40, where only the
    // io-unwrap id may fire — suppression is per-id).
    assert!(
        !diags
            .iter()
            .any(|d| d.id == rules::PANIC_SITE && d.line > 30),
        "suppressed panic-site fired: {diags:#?}"
    );
    // Nothing inside the #[cfg(test)] module (lines >= 73).
    assert!(
        diags.iter().all(|d| d.line < 73),
        "test module leaked: {diags:#?}"
    );
}

#[test]
fn json_report_contains_structured_fields() {
    let diags = lint_paths(&[fixture()]).expect("fixture readable");
    let json = render_json(&diags);
    assert!(json.contains("\"id\": \"hash-container\""));
    assert!(json.contains("\"severity\": \"error\""));
    assert!(json.contains("\"line\": 13"));
    assert!(json.contains("\"suggestion\""));
    assert!(json.contains(&format!(
        "\"errors\": {}",
        diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    )));
}

#[test]
fn unsanctioned_wall_clock_allow_is_ignored() {
    let diags = lint_package_dir(&fixture_pkg("rogue-sim")).expect("fixture readable");
    assert!(
        diags.iter().any(|d| d.id == rules::WALL_CLOCK),
        "wall-clock must fire despite the crate-level allow: {diags:#?}"
    );
    assert_eq!(exit_code(&diags, false), 1, "rogue crate must fail CI");
}

#[test]
fn sanctioned_crate_keeps_its_wall_clock_allow() {
    let diags = lint_package_dir(&fixture_pkg("sanctioned-sim")).expect("fixture readable");
    assert!(
        diags.is_empty(),
        "identical source under a sanctioned name lints clean: {diags:#?}"
    );
}

#[test]
fn fanout_crate_trips_every_par_rule() {
    let diags = lint_package_dir(&fixture_pkg("fanout-sim")).expect("fixture readable");
    for id in [
        rules::PAR_STATIC_MUT,
        rules::PAR_INTERIOR_MUT,
        rules::PAR_THREAD_LOCAL,
    ] {
        assert!(
            diags.iter().any(|d| d.id == id),
            "expected {id}: {diags:#?}"
        );
    }
    assert!(
        diags.iter().all(|d| d.id.starts_with("par-")),
        "only the par family may fire here: {diags:#?}"
    );
    assert_eq!(exit_code(&diags, false), 1, "par-static-mut is an error");
}

#[test]
fn fanout_list_covers_the_live_worker_pool_stack() {
    // `run_pool` lives in agp-experiments and `agp run`/`agp report
    // --jobs N` drive it from agp-cli; the simulation crates execute on
    // the workers. All of them must stay under the par-* discipline.
    for name in [
        "agp-experiments",
        "agp-cli",
        "agp-cluster",
        "agp-sim",
        "agp-mem",
        "agp-core",
    ] {
        assert!(
            agp_lint::semantic::FANOUT_CRATES.contains(&name),
            "{name} missing from FANOUT_CRATES"
        );
    }
}

#[test]
fn same_source_outside_fanout_list_is_clean() {
    let diags = lint_package_dir(&fixture_pkg("fanout-free")).expect("fixture readable");
    assert!(
        diags.is_empty(),
        "par rules are crate-gated; identical source must pass: {diags:#?}"
    );
}

#[test]
fn healthy_protocol_fixture_lints_clean() {
    let diags = lint_workspace(&fixture_pkg("proto-good")).expect("fixture readable");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn rotted_protocol_fixture_fires_all_three_directions() {
    let diags = lint_workspace(&fixture_pkg("proto-bad")).expect("fixture readable");
    assert_eq!(diags.len(), 3, "{diags:#?}");
    assert!(diags.iter().all(|d| d.id == rules::EVENT_PROTOCOL));
    assert!(
        diags.iter().all(|d| d.file == "crates/obs/src/lib.rs"),
        "protocol findings anchor at the variant definitions: {diags:#?}"
    );
    assert!(diags
        .iter()
        .any(|d| d.message.contains("Orphan") && d.message.contains("never emitted")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("Funneled") && d.message.contains("wildcard")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("Untriaged") && d.message.contains("postmortem triage")));
    assert_eq!(exit_code(&diags, false), 1);
}

#[test]
fn cleaned_workspace_lints_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file() && root.join("crates").is_dir(),
        "workspace root not found at {root:?}"
    );
    let diags = lint_workspace(&root).expect("workspace readable");
    assert!(
        diags.is_empty(),
        "workspace must lint clean (fix or suppress):\n{}",
        diags
            .iter()
            .map(|d| d.render_text())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
