//! Golden test pinning the exact `--explain` output for one representative
//! rule, so both CLI entry points (`agp-lint --explain <id>` and
//! `agp lint --explain <id>`) stay byte-stable across refactors.
//! Regenerate with `UPDATE_GOLDENS=1 cargo test -p agp-lint --test
//! explain_golden` and review the diff before committing.

use std::fs;
use std::path::Path;

use agp_lint::{explain, rules};

#[test]
fn explain_nondet_iter_matches_golden() {
    let got = explain::explain(rules::NONDET_ITER).expect("nondet-iter is a known rule");
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/explain-nondet-iter.golden");
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        fs::write(&path, &got).expect("golden writable");
    }
    let want =
        fs::read_to_string(&path).expect("golden missing — regenerate with UPDATE_GOLDENS=1");
    assert_eq!(
        got, want,
        "--explain output drifted from fixtures/explain-nondet-iter.golden; \
         rerun with UPDATE_GOLDENS=1 and review the diff before committing"
    );
}

#[test]
fn explain_examples_keep_their_indentation() {
    // Every rule body shows its firing shape as indented example code; the
    // string-continuation style makes it easy to accidentally flatten it.
    for id in rules::ALL_IDS {
        let text = explain::explain(id).unwrap();
        let after_fires = text
            .split("Fires on:")
            .nth(1)
            .unwrap_or_else(|| panic!("{id}: explain body has no `Fires on:` section"));
        let example = after_fires
            .lines()
            .skip(1) // rest of the `Fires on:` line itself
            .find(|l| !l.trim().is_empty())
            .unwrap_or_else(|| panic!("{id}: no example line after `Fires on:`"));
        assert!(
            example.starts_with("    "),
            "{id}: example code lost its indentation: {example:?}"
        );
    }
}
