//! Property tests for the lexer/parser span contract, with shrinking:
//! random programs (same grammar as the LCG sweep in `span_roundtrip.rs`)
//! must lex into tokens whose text is the exact source slice and parse
//! into an AST whose every node anchors a real token inside its span.
//!
//! Requires the real `proptest`; the offline stub-build scratch drops this
//! file (see `.claude/skills/verify/SKILL.md`).

use agp_lint::ast::{Arm, Block, Expr, ExprKind, Item, ItemKind, Stmt};
use agp_lint::{lexer, parser};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["a", "b", "frame", "slot", "gang", "x2"]).prop_map(String::from)
}

fn expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![(0u64..1000).prop_map(|n| n.to_string()), ident()];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a} * {b}")),
            (ident(), inner.clone(), inner.clone()).prop_map(|(f, a, b)| format!("{f}({a}, {b})")),
            (inner.clone(), ident(), inner.clone()).prop_map(|(r, m, a)| format!("{r}.{m}({a})")),
            inner.clone().prop_map(|a| format!("&{a}")),
            inner.clone().prop_map(|a| format!("({a} as u64)")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("[{a}, {b}]")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a}, {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("{a}..{b}")),
            // Parenthesized: a bare if-else is not a legal operand/receiver
            // in real Rust either.
            (inner.clone(), inner)
                .prop_map(|(a, b)| format!("(if {a} > {b} {{ {a} }} else {{ {b} }})")),
        ]
    })
}

fn stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        (ident(), expr()).prop_map(|(n, e)| format!("let {n} = {e};")),
        expr().prop_map(|e| format!("{e};")),
        (expr(), ident()).prop_map(|(e, n)| format!("if {e} == 0 {{ {n} += 1; }}")),
        (ident(), expr(), expr()).prop_map(|(n, i, e)| format!("for {n} in {i} {{ {e}; }}")),
        (ident(), expr()).prop_map(|(n, e)| format!("while {n} < 3 {{ {e}; }}")),
    ]
}

fn program() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(), 1..5).prop_map(|stmts| {
        format!(
            "fn torture(a: u64, b: u64) -> u64 {{\n    {}\n    a\n}}\n",
            stmts.join("\n    ")
        )
    })
}

fn check_lex_roundtrip(src: &str) {
    let lexed = lexer::lex(src);
    let mut prev_end = 0usize;
    for t in &lexed.toks {
        assert!(t.offset >= prev_end, "tokens overlap in {src:?}");
        assert!(t.end() <= src.len(), "token past EOF in {src:?}");
        assert_eq!(
            &src[t.offset..t.end()],
            t.text,
            "token text is not the source slice in {src:?}"
        );
        let prefix = &src[..t.offset];
        let line = 1 + prefix.matches('\n').count() as u32;
        let col = (t.offset - prefix.rfind('\n').map_or(0, |i| i + 1)) as u32 + 1;
        assert_eq!((t.line, t.col), (line, col), "line/col drift in {src:?}");
        prev_end = t.end();
    }
}

fn check_expr(e: &Expr, src: &str, toks: &[lexer::Tok]) {
    assert!(e.span.lo <= e.span.hi && e.span.hi <= src.len(), "{src:?}");
    let anchor = toks
        .get(e.tok)
        .unwrap_or_else(|| panic!("tok index out of range in {src:?}"));
    assert_eq!(
        (e.span.line, e.span.col),
        (anchor.line, anchor.col),
        "span line/col is not the anchor token's in {src:?}"
    );
}

fn walk_expr(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    fn go(x: &Expr, f: &mut dyn FnMut(&Expr)) {
        f(x);
        walk_expr(x, f);
    }
    match &e.kind {
        ExprKind::MethodCall { recv, args, .. } => {
            go(recv, f);
            for a in args {
                go(a, f);
            }
        }
        ExprKind::Call { callee, args } => {
            go(callee, f);
            for a in args {
                go(a, f);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            go(lhs, f);
            go(rhs, f);
        }
        ExprKind::Field { recv, .. } => go(recv, f),
        ExprKind::Index { recv, index } => {
            go(recv, f);
            go(index, f);
        }
        ExprKind::Unary { expr, .. }
        | ExprKind::Ref { expr, .. }
        | ExprKind::Try(expr)
        | ExprKind::Cast { expr, .. } => go(expr, f),
        ExprKind::For { iter, body, .. } => {
            go(iter, f);
            walk_block(body, f);
        }
        ExprKind::While { cond, body } => {
            go(cond, f);
            walk_block(body, f);
        }
        ExprKind::Loop { body } => walk_block(body, f),
        ExprKind::If { cond, then, els } => {
            go(cond, f);
            walk_block(then, f);
            if let Some(els) = els {
                go(els, f);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            go(scrutinee, f);
            for Arm { guard, body, .. } in arms {
                if let Some(g) = guard {
                    go(g, f);
                }
                go(body, f);
            }
        }
        ExprKind::Closure { body, .. } => go(body, f),
        ExprKind::StructLit { fields, .. } => {
            for (_, v) in fields {
                go(v, f);
            }
        }
        ExprKind::Macro { args, .. } | ExprKind::Tuple(args) | ExprKind::Array(args) => {
            for a in args {
                go(a, f);
            }
        }
        ExprKind::Return(Some(v)) => go(v, f),
        ExprKind::Range { lo, hi } => {
            if let Some(lo) = lo {
                go(lo, f);
            }
            if let Some(hi) = hi {
                go(hi, f);
            }
        }
        ExprKind::Block(b) => walk_block(b, f),
        _ => {}
    }
}

fn walk_block(b: &Block, f: &mut dyn FnMut(&Expr)) {
    for s in &b.stmts {
        match s {
            Stmt::Let { init: Some(e), .. } => {
                f(e);
                walk_expr(e, f);
            }
            Stmt::Expr(e) => {
                f(e);
                walk_expr(e, f);
            }
            Stmt::Item(it) => walk_item(it, f),
            _ => {}
        }
    }
}

fn walk_item(it: &Item, f: &mut dyn FnMut(&Expr)) {
    match &it.kind {
        ItemKind::Fn(fun) => {
            if let Some(body) = &fun.body {
                walk_block(body, f);
            }
        }
        ItemKind::Impl { items, .. } | ItemKind::Trait { items, .. } => {
            for sub in items {
                walk_item(sub, f);
            }
        }
        ItemKind::Mod {
            items: Some(items), ..
        } => {
            for sub in items {
                walk_item(sub, f);
            }
        }
        _ => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generated_programs_satisfy_span_contract(src in program()) {
        check_lex_roundtrip(&src);
        let lexed = lexer::lex(&src);
        let (file, issues) = parser::parse(&lexed.toks);
        prop_assert!(issues.is_empty(), "must parse cleanly: {src:?} -> {issues:?}");
        let check = &mut |e: &Expr| check_expr(e, &src, &lexed.toks);
        for it in &file.items {
            prop_assert!(it.span.lo <= it.span.hi && it.span.hi <= src.len());
            walk_item(it, check);
        }
    }

    #[test]
    fn lexer_never_lies_about_spans(src in "[ -~\n\t]{0,120}") {
        check_lex_roundtrip(&src);
    }
}
