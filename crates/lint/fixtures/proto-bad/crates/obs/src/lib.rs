//! Protocol fixture: a rotted contract. `Orphan` is dead protocol
//! surface (never constructed); `Funneled` is live telemetry that only
//! reaches the explain side's `_ =>` arm; `Untriaged` is emitted and
//! explained but the post-mortem triage never names it.

pub enum ObsEvent {
    Tick { at: u64 },
    Drop(u64),
    Orphan(u64),        // line 9: event-protocol (never emitted)
    Funneled { n: u64 },  // line 10: event-protocol (wildcard-funneled)
    Untriaged { id: u64 }, // line 11: event-protocol (postmortem-untriaged)
}
