//! Protocol fixture: the post-mortem triage side. Names everything
//! except `Untriaged`, which therefore cannot be classified in an
//! incident window — the third rot direction.

pub fn triage(e: &ObsEvent) -> &'static str {
    match e {
        ObsEvent::Tick { .. } => "clock",
        ObsEvent::Drop(_) => "loss",
        ObsEvent::Orphan(_) => "orphan",
        ObsEvent::Funneled { .. } => "funnel",
        _ => "unknown",
    }
}
