//! Protocol fixture: the consuming side. `Orphan` is named (so only its
//! missing emission fires); `Funneled` falls through the wildcard arm;
//! `Untriaged` is named here (so only its missing triage fires).

pub fn digest(e: &ObsEvent) -> u32 {
    match e {
        ObsEvent::Tick { .. } => 1,
        ObsEvent::Drop(_) => 2,
        ObsEvent::Orphan(_) => 3,
        ObsEvent::Untriaged { .. } => 4,
        _ => 0,
    }
}
