//! Protocol fixture: the consuming side. `Orphan` is named (so only its
//! missing emission fires); `Funneled` falls through the wildcard arm.

pub fn digest(e: &ObsEvent) -> u32 {
    match e {
        ObsEvent::Tick { .. } => 1,
        ObsEvent::Drop(_) => 2,
        ObsEvent::Orphan(_) => 3,
        _ => 0,
    }
}
