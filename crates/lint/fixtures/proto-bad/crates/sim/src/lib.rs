//! Protocol fixture: the emitting side. `Orphan` is deliberately absent;
//! `Funneled` is emitted but nobody downstream names it.

pub fn emit_all(bus: &mut Vec<ObsEvent>) {
    bus.push(ObsEvent::Tick { at: 1 });
    bus.push(ObsEvent::Drop(7));
    bus.push(ObsEvent::Funneled { n: 3 });
    bus.push(ObsEvent::Untriaged { id: 4 });
}
