//! Lint fixture: identical host-clock use to `rogue-sim`, under a
//! sanctioned package name. The crate-level allow applies; no findings.

/// Same body as rogue-sim's — only the package name differs.
pub fn leaky_latency_us() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_micros()
}
