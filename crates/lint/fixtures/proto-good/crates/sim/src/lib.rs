//! Protocol fixture: the emitting side — constructs every variant.

pub fn emit_all(bus: &mut Vec<ObsEvent>) {
    bus.push(ObsEvent::Tick { at: 1 });
    bus.push(ObsEvent::Drop(7));
}
