//! Protocol fixture: the post-mortem triage side — an exhaustive,
//! wildcard-free classification naming every variant.

pub fn triage(e: &ObsEvent) -> &'static str {
    match e {
        ObsEvent::Tick { .. } => "clock",
        ObsEvent::Drop(_) => "loss",
    }
}
