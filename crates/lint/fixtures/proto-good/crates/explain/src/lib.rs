//! Protocol fixture: the consuming side — names every variant, no
//! wildcard arm.

pub fn digest(e: &ObsEvent) -> u32 {
    match e {
        ObsEvent::Tick { .. } => 1,
        ObsEvent::Drop(_) => 2,
    }
}
