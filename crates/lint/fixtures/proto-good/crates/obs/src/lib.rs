//! Protocol fixture: the observability contract. Both variants are
//! emitted by `fx-sim` and named explicitly by `fx-explain`.

pub enum ObsEvent {
    Tick { at: u64 },
    Drop(u64),
}
