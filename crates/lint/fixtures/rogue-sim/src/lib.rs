//! Lint fixture: simulation-flavoured code reading the host clock. The
//! manifest claims `allow = ["wall-clock"]`, but this crate is not on
//! `agp_lint::WALL_CLOCK_SANCTIONED`, so the lint must fire anyway.

/// Folds host time into a "latency" — exactly the determinism leak the
/// wall-clock lint exists to catch.
pub fn leaky_latency_us() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_micros()
}
