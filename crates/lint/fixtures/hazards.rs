//! Seeded lint fixture: one site per hazard class, plus sites that must
//! NOT fire (suppressed or test-only). Never compiled — `agp-lint` reads it
//! as text. The integration test asserts the exact findings.

use std::collections::HashMap; // line 5: hash-container
use std::time::Instant;

struct Tracker {
    seen: HashMap<u64, u64>, // line 9: hash-container
}

fn wall_clock_latency() -> u64 {
    let t0 = Instant::now(); // line 13: wall-clock
    let t1 = std::time::SystemTime::now(); // line 14: wall-clock
    drop(t1);
    t0.elapsed().as_micros() as u64
}

fn unseeded(n: u64) -> u64 {
    let mut rng = rand::thread_rng(); // line 20: unseeded-rng
    rng.gen_range(0..n)
}

fn unstable_mean(m: &HashMap<u64, f64>) -> f64 {
    // line 25 declares the map above; the accumulation below is the hazard.
    m.values().sum::<f64>() / m.len() as f64 // line 26: float-accumulate + nondet-iter
}

fn hot_path(opt: Option<u64>) -> u64 {
    opt.unwrap() // line 30: panic-site
}

fn suppressed(opt: Option<u64>) -> u64 {
    // agp-lint: allow(panic-site): fixture proves suppression works
    opt.expect("never fires")
}

fn io_unwrap_hazard(path: &str) -> String {
    // agp-lint: allow(panic-site): the io-unwrap finding below is the point
    std::fs::read_to_string(path).unwrap() // line 40: io-unwrap
}

type Residency = HashMap<u64, u64>; // line 43: hash-container

fn nondet_sweep(r: &Residency) -> u64 {
    let mut n = 0u64;
    for page in r.keys() { // line 47: nondet-iter (seen through the alias)
        n += page;
    }
    n
}

fn sim_time_overflow(a: SimTime, b: SimDur) -> u64 {
    a.as_us() + b.as_us() // line 54: sim-time-arith (tainted operands)
}

fn destined_accumulator(lens: &[u64], per_page: u64) -> SimDur {
    let mut us = 0u64;
    for len in lens.iter() {
        us += len * per_page; // line 60: sim-time-arith (us feeds from_us below)
    }
    SimDur::from_us(us)
}

fn drifting_mean(m: &HashMap<u64, f64>) -> f64 { // line 65: hash-container
    let mut total = 0.0;
    for v in m.values() { // line 67: nondet-iter
        total += v; // line 68: float-accum-loop
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn test_code_may_use_host_facilities() {
        let _start = std::time::Instant::now();
        let mut s: HashSet<u64> = HashSet::new();
        s.insert(1);
        assert_eq!(hot_path(Some(2)), 2);
    }
}
