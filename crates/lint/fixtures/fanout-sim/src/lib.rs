//! Lint fixture: every parallel-readiness hazard class in one file. This
//! source ships byte-for-byte under two package names — `agp-sim` (on the
//! rayon fan-out list: all three `par-*` rules must fire) and
//! `agp-telemetry` (not on the list: the whole family must stay silent).

static mut FRAME_COUNTER: u64 = 0;

pub struct Scratch {
    pub hot: std::cell::RefCell<Vec<u64>>,
}

thread_local! {
    static LAST_SLOT: u64 = 0;
}
