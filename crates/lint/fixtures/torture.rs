//! Parser torture fixture: one file exercising every grammar shape the
//! recursive-descent parser models (and several it deliberately skips).
//! Never compiled — `tests/parser_golden.rs` pins the exact AST outline,
//! and `tests/parse_workspace.rs` requires zero parse issues here.

use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Debug};

pub type FrameTable<'a> = BTreeMap<u64, &'a [u8]>;

pub struct Unit;

pub struct Pair(u64, f64);

pub struct Node<T> {
    pub id: u64,
    pub payload: T,
    pub edges: Vec<(u64, f64)>,
}

pub enum Shape {
    Unit,
    Tuple(u64, f64),
    Struct { width: u64, depth: u64 },
}

static GREETING: &str = "torture";
static mut COUNTER: u64 = 0;
const LIMIT: usize = 4096;

pub trait Visit {
    fn visit(&mut self, id: u64) -> bool;

    fn visit_all(&mut self, ids: &[u64]) -> usize {
        let mut n = 0usize;
        for id in ids.iter() {
            if self.visit(*id) {
                n += 1;
            }
        }
        n
    }
}

impl<T: Debug> Node<T> {
    pub fn new(id: u64, payload: T) -> Self {
        Node {
            id,
            payload,
            edges: Vec::new(),
        }
    }

    pub fn heaviest(&self) -> Option<u64> {
        self.edges
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|e| e.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Unit => write!(f, "unit"),
            Shape::Tuple(a, b) if *b > 0.5 => write!(f, "tuple({a}, hot)"),
            Shape::Tuple(a, _) => write!(f, "tuple({a})"),
            Shape::Struct { width, depth } => write!(f, "{width}x{depth}"),
        }
    }
}

pub mod inner {
    pub fn double(x: u64) -> u64 {
        x.wrapping_mul(2)
    }

    pub mod deeper {
        pub const BIAS: i64 = -3;
    }
}

fn control_flow(n: u64, table: &HashMap<u64, u64>) -> u64 {
    let mut acc = 0u64;
    let mut i = 0;
    while i < n {
        i += 1;
        if i % 15 == 0 {
            continue;
        } else if i > LIMIT as u64 {
            break;
        }
        acc = acc.wrapping_add(i);
    }
    loop {
        acc ^= 1;
        if acc & 1 == 0 {
            break;
        }
    }
    for (k, v) in table.iter() {
        acc = acc.wrapping_add(k ^ v);
    }
    match acc {
        0 => 1,
        1..=9 => acc * 2,
        x if x % 2 == 0 => x / 2,
        _ => acc,
    }
}

fn expressions(xs: &[u64]) -> (u64, f64) {
    let head = xs.first().copied().unwrap_or_default();
    let tail = &xs[1..];
    let sum: u64 = tail.iter().copied().sum::<u64>() + head;
    let parsed = "42".parse::<u64>().unwrap_or(0);
    let arr = [head, sum, parsed];
    let pair = (sum as f64 * 0.5, !head);
    let picked = arr[(sum % 3) as usize];
    let range_sum: u64 = (0..picked).chain(0..=3).sum();
    let negated = -(picked as i64);
    let shifted = (picked << 2) >> 1 | 1 & 3;
    let cmp = shifted >= picked || !(shifted == 0) && picked != 1;
    let chosen = if cmp { range_sum } else { negated as u64 };
    (chosen, pair.0)
}

fn closures_and_chains(scores: &mut Vec<f64>) -> f64 {
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let scale = 2.0f64;
    let boosted = scores
        .iter()
        .map(|s| s * scale)
        .filter(|s| *s > 1.0)
        .fold(0.0, |acc, s| acc + s);
    let mut apply = move |x: f64| x + boosted;
    apply(1.5)
}

fn builders() -> Shape {
    let unit = Shape::Unit;
    let tuple = Shape::Tuple(3, 0.25);
    drop((unit, tuple));
    Shape::Struct {
        width: inner::double(8),
        depth: inner::deeper::BIAS.unsigned_abs(),
    }
}

fn fallible(input: &str) -> Result<u64, std::num::ParseIntError> {
    let n = input.trim().parse::<u64>()?;
    if n == 0 {
        return Err("0".parse::<u64>().unwrap_err());
    }
    Ok(n.saturating_add(1))
}

fn macros_and_raw() -> String {
    let path = r"C:\frames\slot";
    let re = r#"page "fault""#;
    let mut out = String::new();
    out.push_str(path);
    format!("{out}{re}{}", vec![1u8, 2, 3].len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torture_is_reachable() {
        assert_eq!(inner::double(2), 4);
        assert!(fallible("7").is_ok());
        let _ = macros_and_raw();
    }
}
