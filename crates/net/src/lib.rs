//! # agp-net — the cluster interconnect model
//!
//! The paper's testbed connects its nodes with a 100 Mbps Ethernet switch
//! (§4). The relevant property for the experiments is not protocol detail
//! but the *synchronization coupling* it creates: parallel NPB ranks
//! barrier every iteration, so one node still paging holds every other
//! node's rank hostage. Adaptive paging compacts page-in bursts to the
//! start of the quantum *simultaneously on all nodes*, which is exactly
//! what makes the parallel numbers in Figs. 8–9 better than serial ones.
//!
//! This crate provides:
//! * [`NetParams`] — latency/bandwidth cost model (defaults: 100 Mbps,
//!   100 µs one-way latency, the class of hardware in the paper),
//! * [`Barrier`] — an arrival counter that reports the release instant of
//!   a job-wide barrier,
//! * message/collective cost helpers used by the workload models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use agp_obs::{ObsEvent, ObsLink};
use agp_sim::{SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// Interconnect cost parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetParams {
    /// One-way small-message latency.
    pub latency: SimDur,
    /// Link bandwidth in megabits per second (100 for the paper's switch).
    pub bandwidth_mbps: u64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            latency: SimDur::from_us(100),
            bandwidth_mbps: 100,
        }
    }
}

impl NetParams {
    /// Time to move `bytes` point-to-point: latency + serialization.
    pub fn xfer_dur(&self, bytes: u64) -> SimDur {
        // bits / (Mbps · 10^6 b/s) seconds = bits / Mbps µs/10^0... careful:
        // bytes*8 bits at `bandwidth_mbps` Mb/s takes bytes*8 / mbps µs.
        let ser_us = (bytes * 8).div_ceil(self.bandwidth_mbps.max(1));
        self.latency + SimDur::from_us(ser_us)
    }

    /// Completion lag of an `n`-way barrier after the last arrival: a
    /// log-tree of small messages.
    pub fn barrier_dur(&self, n: u32) -> SimDur {
        if n <= 1 {
            return SimDur::ZERO;
        }
        let rounds = (32 - (n - 1).leading_zeros()) as u64; // ceil(log2 n)
        SimDur::from_us(self.latency.as_us() * 2 * rounds)
    }

    /// Cost of an `n`-way all-to-all of `bytes` per rank pair (used by the
    /// IS bucket redistribution model).
    pub fn alltoall_dur(&self, n: u32, bytes_per_pair: u64) -> SimDur {
        if n <= 1 {
            return SimDur::ZERO;
        }
        let peers = (n - 1) as u64;
        self.xfer_dur(bytes_per_pair * peers) + self.barrier_dur(n)
    }
}

/// A reusable job-wide barrier: counts arrivals and reports the release
/// instant once everyone has arrived. Automatically resets for the next
/// iteration's barrier.
#[derive(Clone, Debug)]
pub struct Barrier {
    size: u32,
    arrived: Vec<bool>,
    count: u32,
    /// Completed barrier episodes (diagnostics / tests).
    pub episodes: u64,
    /// First arrival instant of the current episode (for skew tracking).
    first_arrival: Option<SimTime>,
    obs: ObsLink,
}

impl Barrier {
    /// A barrier over `size` ranks.
    pub fn new(size: u32) -> Self {
        Barrier {
            size: size.max(1),
            arrived: vec![false; size.max(1) as usize],
            count: 0,
            episodes: 0,
            first_arrival: None,
            obs: ObsLink::disabled(),
        }
    }

    /// Attach an observation link (`barrier_wait` events on each release,
    /// carrying the first-to-last arrival skew).
    pub fn set_observer(&mut self, obs: ObsLink) {
        self.obs = obs;
    }

    /// Number of participating ranks.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Ranks arrived so far in the current episode.
    pub fn waiting(&self) -> u32 {
        self.count
    }

    /// Rank `rank` arrives at `now`. Returns `Some(release_instant)` when
    /// this arrival completes the barrier (and the barrier resets);
    /// `None` while others are still missing.
    ///
    /// Double arrival by the same rank within an episode indicates a
    /// simulation bug and panics in debug builds.
    pub fn arrive(&mut self, rank: u32, now: SimTime, net: &NetParams) -> Option<SimTime> {
        let r = rank as usize;
        debug_assert!(!self.arrived[r], "rank {rank} arrived twice at one barrier");
        if self.arrived[r] {
            return None;
        }
        if self.count == 0 {
            self.first_arrival = Some(now);
        }
        self.arrived[r] = true;
        self.count += 1;
        if self.count == self.size {
            self.arrived.fill(false);
            self.count = 0;
            self.episodes += 1;
            let lag = net.barrier_dur(self.size);
            let first = self.first_arrival.take().unwrap_or(now);
            self.obs.emit(now, || ObsEvent::BarrierWait {
                ranks: self.size,
                skew_us: now.since(first).as_us(),
                lag_us: lag.as_us(),
            });
            Some(now + lag)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xfer_has_latency_floor() {
        let n = NetParams::default();
        assert_eq!(n.xfer_dur(0), SimDur::from_us(100));
        // 1 MiB at 100 Mbps ≈ 83.9 ms + latency.
        let d = n.xfer_dur(1 << 20);
        assert!(
            d > SimDur::from_ms(80) && d < SimDur::from_ms(90),
            "got {d}"
        );
    }

    #[test]
    fn barrier_cost_grows_logarithmically() {
        let n = NetParams::default();
        assert_eq!(n.barrier_dur(1), SimDur::ZERO);
        let d2 = n.barrier_dur(2);
        let d4 = n.barrier_dur(4);
        let d16 = n.barrier_dur(16);
        assert!(d2 < d4 && d4 < d16);
        assert_eq!(d16, d4 * 2, "log2(16)=4 rounds vs log2(4)=2");
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let net = NetParams::default();
        let mut b = Barrier::new(4);
        let t = SimTime::from_secs(1);
        assert_eq!(b.arrive(0, t, &net), None);
        assert_eq!(b.arrive(2, t, &net), None);
        assert_eq!(b.arrive(1, t, &net), None);
        assert_eq!(b.waiting(), 3);
        let rel = b.arrive(3, SimTime::from_secs(5), &net).unwrap();
        assert_eq!(rel, SimTime::from_secs(5) + net.barrier_dur(4));
        assert_eq!(b.episodes, 1);
    }

    #[test]
    fn barrier_resets_between_episodes() {
        let net = NetParams::default();
        let mut b = Barrier::new(2);
        let t = SimTime::from_secs(1);
        assert!(b.arrive(0, t, &net).is_none());
        assert!(b.arrive(1, t, &net).is_some());
        // Fresh episode.
        assert!(b.arrive(1, t, &net).is_none());
        assert!(b.arrive(0, t, &net).is_some());
        assert_eq!(b.episodes, 2);
    }

    #[test]
    fn single_rank_barrier_is_instant() {
        let net = NetParams::default();
        let mut b = Barrier::new(1);
        let t = SimTime::from_secs(3);
        assert_eq!(b.arrive(0, t, &net), Some(t));
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    #[cfg(debug_assertions)]
    fn double_arrival_panics_in_debug() {
        let net = NetParams::default();
        let mut b = Barrier::new(3);
        let t = SimTime::ZERO;
        b.arrive(0, t, &net);
        b.arrive(0, t, &net);
    }

    #[test]
    fn alltoall_scales_with_peers() {
        let n = NetParams::default();
        assert_eq!(n.alltoall_dur(1, 1000), SimDur::ZERO);
        assert!(n.alltoall_dur(4, 1000) < n.alltoall_dur(8, 1000));
    }
}
