//! # agp-net — the cluster interconnect model
//!
//! The paper's testbed connects its nodes with a 100 Mbps Ethernet switch
//! (§4). The relevant property for the experiments is not protocol detail
//! but the *synchronization coupling* it creates: parallel NPB ranks
//! barrier every iteration, so one node still paging holds every other
//! node's rank hostage. Adaptive paging compacts page-in bursts to the
//! start of the quantum *simultaneously on all nodes*, which is exactly
//! what makes the parallel numbers in Figs. 8–9 better than serial ones.
//!
//! This crate provides:
//! * [`NetParams`] — latency/bandwidth cost model (defaults: 100 Mbps,
//!   100 µs one-way latency, the class of hardware in the paper),
//! * [`Barrier`] — an arrival counter that reports the release instant of
//!   a job-wide barrier,
//! * message/collective cost helpers used by the workload models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use agp_obs::{ObsEvent, ObsLink};
use agp_sim::{SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// Interconnect cost parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetParams {
    /// One-way small-message latency.
    pub latency: SimDur,
    /// Link bandwidth in megabits per second (100 for the paper's switch).
    pub bandwidth_mbps: u64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            latency: SimDur::from_us(100),
            bandwidth_mbps: 100,
        }
    }
}

impl NetParams {
    /// Time to move `bytes` point-to-point: latency + serialization.
    pub fn xfer_dur(&self, bytes: u64) -> SimDur {
        // bits / (Mbps · 10^6 b/s) seconds = bits / Mbps µs/10^0... careful:
        // bytes*8 bits at `bandwidth_mbps` Mb/s takes bytes*8 / mbps µs.
        let ser_us = (bytes * 8).div_ceil(self.bandwidth_mbps.max(1));
        self.latency + SimDur::from_us(ser_us)
    }

    /// Completion lag of an `n`-way barrier after the last arrival: a
    /// log-tree of small messages.
    pub fn barrier_dur(&self, n: u32) -> SimDur {
        if n <= 1 {
            return SimDur::ZERO;
        }
        let rounds = (32 - (n - 1).leading_zeros()) as u64; // ceil(log2 n)
        SimDur::from_us(
            self.latency
                .as_us()
                .saturating_mul(2)
                .saturating_mul(rounds),
        )
    }

    /// Cost of an `n`-way all-to-all of `bytes` per rank pair (used by the
    /// IS bucket redistribution model).
    pub fn alltoall_dur(&self, n: u32, bytes_per_pair: u64) -> SimDur {
        if n <= 1 {
            return SimDur::ZERO;
        }
        let peers = (n - 1) as u64;
        self.xfer_dur(bytes_per_pair * peers) + self.barrier_dur(n)
    }
}

/// Default [`Barrier`] timeout: 60 simulated seconds.
///
/// Far beyond any legitimate wait in the modelled workloads — the worst
/// quantum in the paper's experiments is 20 s and barrier episodes
/// complete within one quantum — yet short enough that a lost release
/// message (chaos injection, or any future bug that strands an episode)
/// surfaces as a bounded re-issue instead of an infinite hang.
pub const DEFAULT_BARRIER_TIMEOUT: SimDur = SimDur::from_secs(60);

/// A reusable job-wide barrier: counts arrivals and reports the release
/// instant once everyone has arrived. Automatically resets for the next
/// iteration's barrier.
///
/// Every episode carries a deadline ([`Barrier::deadline`]): the first
/// arrival plus the configured timeout. Waiting is therefore *total* —
/// a driver that polls [`Barrier::expired`] (as the cluster simulator
/// does) is guaranteed to either see the release or hit the deadline
/// and recover; no lost release message can wedge the system.
#[derive(Clone, Debug)]
pub struct Barrier {
    size: u32,
    arrived: Vec<bool>,
    count: u32,
    /// Completed barrier episodes (diagnostics / tests).
    pub episodes: u64,
    /// First arrival instant of the current episode (for skew tracking).
    first_arrival: Option<SimTime>,
    timeout: SimDur,
    obs: ObsLink,
}

impl Barrier {
    /// A barrier over `size` ranks with the
    /// [default timeout](DEFAULT_BARRIER_TIMEOUT).
    pub fn new(size: u32) -> Self {
        Barrier::with_timeout(size, DEFAULT_BARRIER_TIMEOUT)
    }

    /// A barrier over `size` ranks whose episodes expire `timeout`
    /// after their first arrival. A zero timeout is clamped to 1 µs so
    /// the deadline is always after the first arrival.
    pub fn with_timeout(size: u32, timeout: SimDur) -> Self {
        Barrier {
            size: size.max(1),
            arrived: vec![false; size.max(1) as usize],
            count: 0,
            episodes: 0,
            first_arrival: None,
            timeout: timeout.max(SimDur::from_us(1)),
            obs: ObsLink::disabled(),
        }
    }

    /// Attach an observation link (`barrier_wait` events on each release,
    /// carrying the first-to-last arrival skew).
    pub fn set_observer(&mut self, obs: ObsLink) {
        self.obs = obs;
    }

    /// Number of participating ranks.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Ranks arrived so far in the current episode.
    pub fn waiting(&self) -> u32 {
        self.count
    }

    /// Configured episode timeout.
    pub fn timeout(&self) -> SimDur {
        self.timeout
    }

    /// Deadline of the in-flight episode: first arrival + timeout.
    /// `None` when no rank is waiting.
    pub fn deadline(&self) -> Option<SimTime> {
        self.first_arrival.map(|f| f + self.timeout)
    }

    /// Whether the in-flight episode has outlived its deadline at
    /// `now`. Always `false` when no rank is waiting.
    pub fn expired(&self, now: SimTime) -> bool {
        self.deadline().is_some_and(|d| now >= d)
    }

    /// Abandon the in-flight episode (crash recovery / timeout
    /// re-issue): forget all arrivals without counting an episode.
    /// Returns how many ranks were waiting.
    pub fn reset(&mut self) -> u32 {
        let waiting = self.count;
        self.arrived.fill(false);
        self.count = 0;
        self.first_arrival = None;
        waiting
    }

    /// Rank `rank` arrives at `now`. Returns `Some(release_instant)` when
    /// this arrival completes the barrier (and the barrier resets);
    /// `None` while others are still missing.
    ///
    /// Double arrival by the same rank within an episode indicates a
    /// simulation bug and panics in debug builds.
    pub fn arrive(&mut self, rank: u32, now: SimTime, net: &NetParams) -> Option<SimTime> {
        let _perf = agp_perf::scope(agp_perf::Span::NetBarrier);
        let r = rank as usize;
        debug_assert!(!self.arrived[r], "rank {rank} arrived twice at one barrier");
        if self.arrived[r] {
            return None;
        }
        if self.count == 0 {
            self.first_arrival = Some(now);
        }
        self.arrived[r] = true;
        self.count += 1;
        if self.count == self.size {
            self.arrived.fill(false);
            self.count = 0;
            self.episodes += 1;
            let lag = net.barrier_dur(self.size);
            let first = self.first_arrival.take().unwrap_or(now);
            self.obs.emit(now, || ObsEvent::BarrierWait {
                ranks: self.size,
                skew_us: now.since(first).as_us(),
                lag_us: lag.as_us(),
            });
            Some(now + lag)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xfer_has_latency_floor() {
        let n = NetParams::default();
        assert_eq!(n.xfer_dur(0), SimDur::from_us(100));
        // 1 MiB at 100 Mbps ≈ 83.9 ms + latency.
        let d = n.xfer_dur(1 << 20);
        assert!(
            d > SimDur::from_ms(80) && d < SimDur::from_ms(90),
            "got {d}"
        );
    }

    #[test]
    fn barrier_cost_grows_logarithmically() {
        let n = NetParams::default();
        assert_eq!(n.barrier_dur(1), SimDur::ZERO);
        let d2 = n.barrier_dur(2);
        let d4 = n.barrier_dur(4);
        let d16 = n.barrier_dur(16);
        assert!(d2 < d4 && d4 < d16);
        assert_eq!(d16, d4 * 2, "log2(16)=4 rounds vs log2(4)=2");
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let net = NetParams::default();
        let mut b = Barrier::new(4);
        let t = SimTime::from_secs(1);
        assert_eq!(b.arrive(0, t, &net), None);
        assert_eq!(b.arrive(2, t, &net), None);
        assert_eq!(b.arrive(1, t, &net), None);
        assert_eq!(b.waiting(), 3);
        let rel = b.arrive(3, SimTime::from_secs(5), &net).unwrap();
        assert_eq!(rel, SimTime::from_secs(5) + net.barrier_dur(4));
        assert_eq!(b.episodes, 1);
    }

    #[test]
    fn barrier_resets_between_episodes() {
        let net = NetParams::default();
        let mut b = Barrier::new(2);
        let t = SimTime::from_secs(1);
        assert!(b.arrive(0, t, &net).is_none());
        assert!(b.arrive(1, t, &net).is_some());
        // Fresh episode.
        assert!(b.arrive(1, t, &net).is_none());
        assert!(b.arrive(0, t, &net).is_some());
        assert_eq!(b.episodes, 2);
    }

    #[test]
    fn single_rank_barrier_is_instant() {
        let net = NetParams::default();
        let mut b = Barrier::new(1);
        let t = SimTime::from_secs(3);
        assert_eq!(b.arrive(0, t, &net), Some(t));
    }

    #[test]
    #[should_panic(expected = "arrived twice")]
    #[cfg(debug_assertions)]
    fn double_arrival_panics_in_debug() {
        let net = NetParams::default();
        let mut b = Barrier::new(3);
        let t = SimTime::ZERO;
        b.arrive(0, t, &net);
        b.arrive(0, t, &net);
    }

    #[test]
    fn deadline_tracks_the_first_arrival() {
        let net = NetParams::default();
        let mut b = Barrier::with_timeout(3, SimDur::from_secs(10));
        assert_eq!(b.deadline(), None);
        assert!(!b.expired(SimTime::from_mins(60)));
        b.arrive(1, SimTime::from_secs(5), &net);
        assert_eq!(b.deadline(), Some(SimTime::from_secs(15)));
        assert!(!b.expired(SimTime::from_secs(14)));
        assert!(b.expired(SimTime::from_secs(15)));
        // A later second arrival does not move the deadline.
        b.arrive(0, SimTime::from_secs(9), &net);
        assert_eq!(b.deadline(), Some(SimTime::from_secs(15)));
        // Release clears it.
        b.arrive(2, SimTime::from_secs(9), &net);
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn reset_abandons_the_episode_without_counting_it() {
        let net = NetParams::default();
        let mut b = Barrier::new(2);
        let t = SimTime::from_secs(1);
        assert!(b.arrive(0, t, &net).is_none());
        assert_eq!(b.reset(), 1);
        assert_eq!(b.waiting(), 0);
        assert_eq!(b.deadline(), None);
        assert_eq!(b.episodes, 0);
        // Both ranks can arrive again in the fresh episode.
        assert!(b.arrive(0, t, &net).is_none());
        assert!(b.arrive(1, t, &net).is_some());
        assert_eq!(b.episodes, 1);
    }

    #[test]
    fn default_timeout_is_sixty_seconds() {
        assert_eq!(DEFAULT_BARRIER_TIMEOUT, SimDur::from_secs(60));
        assert_eq!(Barrier::new(4).timeout(), DEFAULT_BARRIER_TIMEOUT);
        // Zero timeout is clamped so deadlines are strictly after the
        // first arrival.
        assert_eq!(
            Barrier::with_timeout(2, SimDur::ZERO).timeout(),
            SimDur::from_us(1)
        );
    }

    #[test]
    fn alltoall_scales_with_peers() {
        let n = NetParams::default();
        assert_eq!(n.alltoall_dur(1, 1000), SimDur::ZERO);
        assert!(n.alltoall_dur(4, 1000) < n.alltoall_dur(8, 1000));
    }
}
