//! `agp-fuzz` — deterministic fault-space search over [`FaultPlan`]s.
//!
//! Three pieces, all pure (no simulation here — the cluster crate owns
//! the oracle that actually runs a plan):
//!
//! * [`Verdict`] — the closed classification every fuzzed run lands in.
//!   The taxonomy is part of the findings/corpus schema: names appear in
//!   corpus file names, findings manifests, and postmortem headlines.
//! * [`PlanGen`] — a seed-deterministic generator producing valid plans
//!   that span the whole [`FaultSpec`] taxonomy × timing windows ×
//!   [`RecoveryPolicy`] knobs. Same seed → same plan sequence, byte for
//!   byte, forever (the generator is part of the reproducibility
//!   contract, like the simulator's RNG).
//! * [`shrink`] — delta debugging: bisect the fault list, widen time
//!   windows, decay intensities, and reset recovery knobs, keeping every
//!   mutation only if the caller's oracle still returns the original
//!   verdict. Every accepted mutation strictly decreases [`plan_weight`],
//!   so shrinking terminates and the result is a fixpoint.

use crate::{FaultPlan, FaultSpec, RecoveryPolicy};
use agp_sim::SimRng;

/// How a fuzzed run ended. Closed world: every run maps to exactly one
/// variant, and the mapping is deterministic for a deterministic run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Ran to completion and no fault ever fired.
    Clean,
    /// Ran to completion through at least one fault; the typed fault
    /// counters tile (every injected fault is accounted for by exactly
    /// one recovery action).
    Recovered,
    /// A watchdog rule other than `no_progress` tripped (recovery
    /// exhaustion, per-job stall SLO, queue depth).
    WatchdogTrip,
    /// The run aborted on a violated simulation invariant — including a
    /// fault-counter tiling mismatch detected by the harness.
    InvariantViolation,
    /// The run aborted with any other typed error.
    TypedError,
    /// Two same-seed runs diverged (trace bytes, error, or incident) —
    /// the one verdict that is a simulator bug by definition.
    Nondeterministic,
    /// The `no_progress` watchdog tripped: jobs pending, nothing moving.
    Hang,
}

impl Verdict {
    /// Every variant, in severity-agnostic declaration order (stable:
    /// findings manifests count by this order).
    pub const ALL: [Verdict; 7] = [
        Verdict::Clean,
        Verdict::Recovered,
        Verdict::WatchdogTrip,
        Verdict::InvariantViolation,
        Verdict::TypedError,
        Verdict::Nondeterministic,
        Verdict::Hang,
    ];

    /// Stable wire name (findings manifests, corpus file names).
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Clean => "clean",
            Verdict::Recovered => "recovered",
            Verdict::WatchdogTrip => "watchdog_trip",
            Verdict::InvariantViolation => "invariant_violation",
            Verdict::TypedError => "typed_error",
            Verdict::Nondeterministic => "nondeterministic",
            Verdict::Hang => "hang",
        }
    }

    /// Inverse of [`Verdict::name`].
    pub fn from_name(name: &str) -> Option<Verdict> {
        Verdict::ALL.into_iter().find(|v| v.name() == name)
    }

    /// Whether this verdict is a finding (gets shrunk and written out).
    /// `Clean` and `Recovered` are the two success classes.
    pub fn is_failing(self) -> bool {
        !matches!(self, Verdict::Clean | Verdict::Recovered)
    }
}

/// Generation bounds: every random draw lands inside these, so every
/// generated plan passes [`FaultPlan::validate`] for the target geometry
/// (modulo the rare duplicate/overlap, which the generator rejects and
/// redraws deterministically).
#[derive(Clone, Copy, Debug)]
pub struct GenBounds {
    /// Cluster node count the plans target.
    pub nodes: u32,
    /// Job count the plans target.
    pub jobs: u32,
    /// Fault windows and instants are drawn in `[0, horizon_us)`.
    pub horizon_us: u64,
    /// Maximum faults per plan.
    pub max_faults: usize,
}

impl Default for GenBounds {
    fn default() -> Self {
        GenBounds {
            nodes: 2,
            jobs: 2,
            horizon_us: 900_000_000, // 15 simulated minutes
            max_faults: 5,
        }
    }
}

/// Seed-deterministic [`FaultPlan`] generator.
#[derive(Clone, Debug)]
pub struct PlanGen {
    rng: SimRng,
    bounds: GenBounds,
}

impl PlanGen {
    /// A generator whose whole plan sequence is a pure function of
    /// `seed` and `bounds`.
    pub fn new(seed: u64, bounds: GenBounds) -> PlanGen {
        PlanGen {
            rng: SimRng::new(seed).fork(0x4655_5A5A), // "FUZZ"
            bounds,
        }
    }

    /// The next plan in the sequence. Always valid for the generator's
    /// geometry: candidates that trip whole-plan validation (duplicate
    /// faults, overlapping crash windows) are discarded and redrawn from
    /// the same stream, which keeps the sequence deterministic.
    pub fn plan(&mut self) -> FaultPlan {
        loop {
            let candidate = self.candidate();
            if candidate
                .validate(self.bounds.nodes as usize, self.bounds.jobs as usize)
                .is_ok()
            {
                return candidate;
            }
        }
    }

    fn candidate(&mut self) -> FaultPlan {
        let seed = self.rng.next_u64_raw() >> 11; // keep within 2^53 for JSON
        let count = 1 + self.rng.below(self.bounds.max_faults as u64) as usize;
        let faults = (0..count).map(|_| self.spec()).collect();
        FaultPlan {
            schema_version: crate::FAULT_PLAN_SCHEMA_VERSION,
            seed,
            faults,
            recovery: self.recovery(),
        }
    }

    /// Probabilities are drawn on a 1/20 grid: coarse enough that decimal
    /// renderings stay short and shrink ladders align, fine enough to
    /// cover rare-to-certain.
    fn p(&mut self) -> f64 {
        self.rng.range(1, 21) as f64 / 20.0
    }

    /// Half the windows are "forever" (the common committed-plan shape),
    /// the rest are proper sub-windows of the horizon.
    fn window(&mut self) -> (u64, u64) {
        if self.rng.chance(0.5) {
            (0, u64::MAX)
        } else {
            let from_us = self.rng.below(self.bounds.horizon_us);
            let width = 1 + self.rng.below(self.bounds.horizon_us);
            (from_us, from_us + width)
        }
    }

    fn spec(&mut self) -> FaultSpec {
        let node = self.rng.below(self.bounds.nodes as u64) as u32;
        match self.rng.below(5) {
            0 => {
                let (from_us, until_us) = self.window();
                FaultSpec::DiskErrors {
                    node,
                    p: self.p(),
                    from_us,
                    until_us,
                }
            }
            1 => {
                let (from_us, until_us) = self.window();
                FaultSpec::DiskSlow {
                    node,
                    penalty_us: 1_000 * self.rng.range(1, 61),
                    p: self.p(),
                    from_us,
                    until_us,
                }
            }
            2 => {
                let (from_us, until_us) = self.window();
                FaultSpec::BarrierDrops {
                    job: self.rng.below(self.bounds.jobs as u64) as u32,
                    p: self.p(),
                    from_us,
                    until_us,
                }
            }
            3 => FaultSpec::NodeCrash {
                node,
                at_us: self.rng.below(self.bounds.horizon_us),
                down_us: 1_000_000 * self.rng.range(1, 121),
            },
            _ => FaultSpec::MemPressure {
                node,
                at_us: self.rng.below(self.bounds.horizon_us),
                pages: 64 << self.rng.below(7),
            },
        }
    }

    /// Each knob keeps its default most of the time; randomized knobs
    /// stay inside the regimes the recovery code is meant to handle (the
    /// interesting bugs live in the interaction, not in absurd values —
    /// those are `validate`'s job to reject).
    fn recovery(&mut self) -> RecoveryPolicy {
        let mut r = RecoveryPolicy::default();
        if self.rng.chance(0.35) {
            r.io_retries = self.rng.below(7) as u32;
        }
        if self.rng.chance(0.35) {
            r.io_backoff_us = 500 * self.rng.range(1, 9);
        }
        if self.rng.chance(0.35) {
            r.io_backoff_cap_us = 8_000 << self.rng.below(4);
        }
        if self.rng.chance(0.35) {
            r.ai_degrade_after = 1 + self.rng.below(6) as u32;
        }
        if self.rng.chance(0.35) {
            // Up to an hour: long enough to starve every job past the
            // no-progress bound — the route to `Verdict::Hang`.
            r.barrier_timeout_us = 1_000_000 * self.rng.range(30, 3_601);
        }
        if self.rng.chance(0.35) {
            r.barrier_retries = self.rng.below(10) as u32;
        }
        r
    }
}

/// Monotone size measure driving the shrinker: fault count dominates,
/// then per-fault intensity (probability, penalty, outage, burst size,
/// instants), then window narrowness, then non-default recovery knobs.
/// Every mutation [`shrink`] proposes strictly decreases this.
pub fn plan_weight(plan: &FaultPlan) -> u64 {
    let mut w = (plan.faults.len() as u64).saturating_mul(1 << 40);
    for f in &plan.faults {
        w = w.saturating_add(spec_weight(f));
    }
    w.saturating_add(non_default_knobs(&plan.recovery))
}

fn milli(p: f64) -> u64 {
    (p.clamp(0.0, 1.0) * 1_000.0) as u64
}

fn window_weight(from_us: u64, until_us: u64) -> u64 {
    from_us.saturating_add(u64::from(until_us != u64::MAX))
}

fn spec_weight(f: &FaultSpec) -> u64 {
    match *f {
        FaultSpec::DiskErrors {
            p,
            from_us,
            until_us,
            ..
        }
        | FaultSpec::BarrierDrops {
            p,
            from_us,
            until_us,
            ..
        } => milli(p).saturating_add(window_weight(from_us, until_us)),
        FaultSpec::DiskSlow {
            penalty_us,
            p,
            from_us,
            until_us,
            ..
        } => milli(p)
            .saturating_add(window_weight(from_us, until_us))
            .saturating_add(penalty_us),
        FaultSpec::NodeCrash { at_us, down_us, .. } => at_us.saturating_add(down_us),
        FaultSpec::MemPressure { at_us, pages, .. } => at_us.saturating_add(pages),
    }
}

fn non_default_knobs(r: &RecoveryPolicy) -> u64 {
    let d = RecoveryPolicy::default();
    [
        r.io_retries != d.io_retries,
        r.io_backoff_us != d.io_backoff_us,
        r.io_backoff_cap_us != d.io_backoff_cap_us,
        r.ai_degrade_after != d.ai_degrade_after,
        r.barrier_timeout_us != d.barrier_timeout_us,
        r.barrier_retries != d.barrier_retries,
    ]
    .into_iter()
    .map(u64::from)
    .sum()
}

/// Delta-debug `start` down to a minimal plan that still produces
/// `target` under `oracle`. The oracle is called at most
/// `max_oracle_calls` times (each call is typically a full double-run of
/// the simulation, so the budget is the shrinker's wall-clock knob); on
/// exhaustion the best plan so far is returned.
///
/// Guarantees, assuming a deterministic oracle:
/// * the result produces `target` (it is `start` or an accepted mutant);
/// * `plan_weight(result) <= plan_weight(start)` and the fault list never
///   grows;
/// * with budget to spare, the result is a fixpoint: a second `shrink`
///   returns it unchanged;
/// * byte-deterministic: candidates are proposed in a fixed order, so
///   the same inputs shrink to the same plan.
pub fn shrink<F>(
    start: &FaultPlan,
    target: Verdict,
    max_oracle_calls: u32,
    mut oracle: F,
) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> Verdict,
{
    let mut cur = start.clone();
    let mut calls = 0u32;
    // One sweep proposes candidates in a fixed order and greedily accepts
    // the first that reproduces the verdict; every accept restarts the
    // sweep. plan_weight strictly decreases per accept, so this ends.
    'sweep: loop {
        for cand in candidates(&cur) {
            if calls >= max_oracle_calls {
                break 'sweep;
            }
            // Structural validity (geometry-free): shrinking never raises
            // a node/job index, so only whole-plan shape can regress.
            if cand.validate(usize::MAX, usize::MAX).is_err() {
                continue;
            }
            debug_assert!(
                plan_weight(&cand) < plan_weight(&cur),
                "non-shrinking mutation"
            );
            calls += 1;
            if oracle(&cand) == target {
                cur = cand;
                continue 'sweep;
            }
        }
        break;
    }
    cur
}

/// All single-step shrink candidates of `cur`, heaviest reductions first:
/// chunked fault removal (delta debugging's bisection), then per-fault
/// window widening and intensity decay, then recovery-knob resets.
fn candidates(cur: &FaultPlan) -> Vec<FaultPlan> {
    let mut out = Vec::new();
    let n = cur.faults.len();
    // Chunked removal: halves, quarters, ... single faults.
    let mut chunk = n.next_power_of_two();
    while chunk >= 1 {
        if chunk <= n {
            let mut at = 0;
            while at < n {
                let end = (at + chunk).min(n);
                let mut cand = cur.clone();
                cand.faults.drain(at..end);
                out.push(cand);
                at += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    // Per-fault simplification.
    for i in 0..n {
        for spec in simpler_specs(&cur.faults[i]) {
            let mut cand = cur.clone();
            cand.faults[i] = spec;
            out.push(cand);
        }
    }
    // Recovery-knob resets.
    type KnobReset<'a> = (&'a dyn Fn(&mut RecoveryPolicy), bool);
    let d = RecoveryPolicy::default();
    let resets: [KnobReset; 6] = [
        (
            &|r| r.io_retries = d.io_retries,
            cur.recovery.io_retries != d.io_retries,
        ),
        (
            &|r| r.io_backoff_us = d.io_backoff_us,
            cur.recovery.io_backoff_us != d.io_backoff_us,
        ),
        (
            &|r| r.io_backoff_cap_us = d.io_backoff_cap_us,
            cur.recovery.io_backoff_cap_us != d.io_backoff_cap_us,
        ),
        (
            &|r| r.ai_degrade_after = d.ai_degrade_after,
            cur.recovery.ai_degrade_after != d.ai_degrade_after,
        ),
        (
            &|r| r.barrier_timeout_us = d.barrier_timeout_us,
            cur.recovery.barrier_timeout_us != d.barrier_timeout_us,
        ),
        (
            &|r| r.barrier_retries = d.barrier_retries,
            cur.recovery.barrier_retries != d.barrier_retries,
        ),
    ];
    for (reset, differs) in resets {
        if differs {
            let mut cand = cur.clone();
            reset(&mut cand.recovery);
            out.push(cand);
        }
    }
    out
}

/// Strictly-lighter variants of one fault: widen its window to forever,
/// decay its probability down a fixed ladder, halve its magnitudes, and
/// pull its instant back to zero.
fn simpler_specs(f: &FaultSpec) -> Vec<FaultSpec> {
    let mut out = Vec::new();
    // Strictness is judged in weight units (milli), not raw floats, so a
    // probability like 0.0501 never proposes a weight-neutral "decay".
    let p_ladder = |p: f64, out: &mut Vec<f64>| {
        for q in [0.05, 0.1, 0.25, 0.5] {
            if milli(q) < milli(p) {
                out.push(q);
            }
        }
    };
    match *f {
        FaultSpec::DiskErrors {
            node,
            p,
            from_us,
            until_us,
        } => {
            if from_us > 0 {
                out.push(FaultSpec::DiskErrors {
                    node,
                    p,
                    from_us: 0,
                    until_us,
                });
            }
            if until_us != u64::MAX {
                out.push(FaultSpec::DiskErrors {
                    node,
                    p,
                    from_us,
                    until_us: u64::MAX,
                });
            }
            let mut qs = Vec::new();
            p_ladder(p, &mut qs);
            for q in qs {
                out.push(FaultSpec::DiskErrors {
                    node,
                    p: q,
                    from_us,
                    until_us,
                });
            }
        }
        FaultSpec::DiskSlow {
            node,
            penalty_us,
            p,
            from_us,
            until_us,
        } => {
            if from_us > 0 {
                out.push(FaultSpec::DiskSlow {
                    node,
                    penalty_us,
                    p,
                    from_us: 0,
                    until_us,
                });
            }
            if until_us != u64::MAX {
                out.push(FaultSpec::DiskSlow {
                    node,
                    penalty_us,
                    p,
                    from_us,
                    until_us: u64::MAX,
                });
            }
            let mut qs = Vec::new();
            p_ladder(p, &mut qs);
            for q in qs {
                out.push(FaultSpec::DiskSlow {
                    node,
                    penalty_us,
                    p: q,
                    from_us,
                    until_us,
                });
            }
            if penalty_us >= 2 {
                out.push(FaultSpec::DiskSlow {
                    node,
                    penalty_us: penalty_us / 2,
                    p,
                    from_us,
                    until_us,
                });
            }
        }
        FaultSpec::BarrierDrops {
            job,
            p,
            from_us,
            until_us,
        } => {
            if from_us > 0 {
                out.push(FaultSpec::BarrierDrops {
                    job,
                    p,
                    from_us: 0,
                    until_us,
                });
            }
            if until_us != u64::MAX {
                out.push(FaultSpec::BarrierDrops {
                    job,
                    p,
                    from_us,
                    until_us: u64::MAX,
                });
            }
            let mut qs = Vec::new();
            p_ladder(p, &mut qs);
            for q in qs {
                out.push(FaultSpec::BarrierDrops {
                    job,
                    p: q,
                    from_us,
                    until_us,
                });
            }
        }
        FaultSpec::NodeCrash {
            node,
            at_us,
            down_us,
        } => {
            if at_us > 0 {
                out.push(FaultSpec::NodeCrash {
                    node,
                    at_us: 0,
                    down_us,
                });
            }
            if down_us >= 2 {
                out.push(FaultSpec::NodeCrash {
                    node,
                    at_us,
                    down_us: down_us / 2,
                });
            }
        }
        FaultSpec::MemPressure { node, at_us, pages } => {
            if at_us > 0 {
                out.push(FaultSpec::MemPressure {
                    node,
                    at_us: 0,
                    pages,
                });
            }
            if pages >= 2 {
                out.push(FaultSpec::MemPressure {
                    node,
                    at_us,
                    pages: pages / 2,
                });
            }
        }
    }
    out
}

/// FNV-1a-64 — the workspace's stable fingerprint hash, here over
/// findings artifacts so two fuzz runs can be compared with one integer.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_names_round_trip_and_split_success_from_failure() {
        for v in Verdict::ALL {
            assert_eq!(Verdict::from_name(v.name()), Some(v));
        }
        assert_eq!(Verdict::from_name("meh"), None);
        assert!(!Verdict::Clean.is_failing());
        assert!(!Verdict::Recovered.is_failing());
        assert!(Verdict::Hang.is_failing());
        assert!(Verdict::Nondeterministic.is_failing());
    }

    #[test]
    fn generator_is_deterministic_and_always_valid() {
        let bounds = GenBounds::default();
        let mut a = PlanGen::new(7, bounds);
        let mut b = PlanGen::new(7, bounds);
        for _ in 0..50 {
            let pa = a.plan();
            let pb = b.plan();
            assert_eq!(pa, pb);
            pa.validate(bounds.nodes as usize, bounds.jobs as usize)
                .expect("generated plans validate");
            assert_eq!(pa.to_json_string(), pb.to_json_string());
        }
        let mut c = PlanGen::new(8, bounds);
        assert_ne!(a.plan(), c.plan(), "different seeds diverge");
    }

    #[test]
    fn generator_covers_the_whole_taxonomy() {
        let mut g = PlanGen::new(1, GenBounds::default());
        let mut kinds = [false; 5];
        for _ in 0..100 {
            for f in g.plan().faults {
                kinds[match f {
                    FaultSpec::DiskErrors { .. } => 0,
                    FaultSpec::DiskSlow { .. } => 1,
                    FaultSpec::BarrierDrops { .. } => 2,
                    FaultSpec::NodeCrash { .. } => 3,
                    FaultSpec::MemPressure { .. } => 4,
                }] = true;
            }
        }
        assert_eq!(kinds, [true; 5], "100 plans must span all fault kinds");
    }

    #[test]
    fn shrink_bisects_to_the_single_guilty_fault() {
        // Oracle: fails iff the plan still contains a NodeCrash.
        let mut plan = FaultPlan::smoke(3);
        let guilty = |p: &FaultPlan| {
            if p.faults
                .iter()
                .any(|f| matches!(f, FaultSpec::NodeCrash { .. }))
            {
                Verdict::TypedError
            } else {
                Verdict::Recovered
            }
        };
        plan.recovery.io_retries = 1; // noise the shrinker should drop
        let min = shrink(&plan, Verdict::TypedError, 10_000, guilty);
        assert_eq!(min.faults.len(), 1);
        assert!(matches!(
            min.faults[0],
            FaultSpec::NodeCrash { at_us: 0, .. }
        ));
        assert_eq!(min.recovery, RecoveryPolicy::default());
        // Fixpoint: shrinking the minimal plan returns it unchanged.
        let again = shrink(&min, Verdict::TypedError, 10_000, guilty);
        assert_eq!(again, min);
    }

    #[test]
    fn shrink_respects_the_oracle_budget() {
        let plan = FaultPlan::smoke(3);
        let min = shrink(&plan, Verdict::TypedError, 0, |_| Verdict::TypedError);
        assert_eq!(min, plan, "zero budget returns the input");
    }

    #[test]
    fn weight_orders_obvious_simplifications() {
        let plan = FaultPlan::smoke(3);
        let mut fewer = plan.clone();
        fewer.faults.pop();
        assert!(plan_weight(&fewer) < plan_weight(&plan));
        let mut tweaked = plan.clone();
        tweaked.recovery.io_retries = 1;
        assert!(plan_weight(&tweaked) > plan_weight(&plan));
    }

    #[test]
    fn fnv1a_matches_the_reference_vector() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
