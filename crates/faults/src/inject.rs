//! The runtime injector: turns a [`FaultPlan`] into deterministic
//! per-decision answers for the cluster simulation.

use agp_sim::SimRng;

use crate::plan::{FaultPlan, FaultSpec, RecoveryPolicy};

/// Stream tags for the injector's forked RNG substreams. Disk and
/// network draws come from independent streams so adding a disk fault
/// spec never perturbs the barrier-drop sequence (and vice versa).
const STREAM_DISK: u64 = 0xD15C;
const STREAM_NET: u64 = 0xBA88;

/// What happens to one disk request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskOutcome {
    /// The request proceeds normally.
    Ok,
    /// The request proceeds but its service time is inflated by this many
    /// microseconds (latency spike).
    Slow(u64),
    /// The request fails after the device's command overhead; the caller
    /// retries with backoff.
    Error,
}

/// A fault that fires at a plan-scheduled instant rather than per
/// decision; the simulation turns these into queue events up front.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimedFault {
    /// Node `node` crashes.
    Crash {
        /// Crashing node index.
        node: u32,
    },
    /// Node `node` comes back.
    Restart {
        /// Restarting node index.
        node: u32,
    },
    /// Forced reclaim of `pages` frames on `node`.
    MemPressure {
        /// Target node index.
        node: u32,
        /// Frames to reclaim.
        pages: u64,
    },
}

/// The deterministic chaos oracle. One per run; owned by the cluster
/// simulation when a plan is active.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    disk_rng: SimRng,
    net_rng: SimRng,
    /// Cumulative injected disk errors per node; drives the `ai`
    /// degradation threshold.
    disk_errors: Vec<u64>,
}

impl FaultInjector {
    /// Build an injector for a cluster of `nodes` nodes. The plan should
    /// already be validated against the geometry.
    pub fn new(plan: FaultPlan, nodes: usize) -> FaultInjector {
        let root = SimRng::new(plan.seed);
        FaultInjector {
            disk_rng: root.fork(STREAM_DISK),
            net_rng: root.fork(STREAM_NET),
            disk_errors: vec![0; nodes],
            plan,
        }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The recovery knobs.
    pub fn recovery(&self) -> &RecoveryPolicy {
        &self.plan.recovery
    }

    /// Plan-scheduled faults as `(at_us, fault)` pairs, sorted by time
    /// (ties keep plan order). Each `NodeCrash` contributes both the
    /// crash and its paired restart.
    pub fn timed(&self) -> Vec<(u64, TimedFault)> {
        let mut out = Vec::new();
        for f in &self.plan.faults {
            match *f {
                FaultSpec::NodeCrash {
                    node,
                    at_us,
                    down_us,
                } => {
                    out.push((at_us, TimedFault::Crash { node }));
                    out.push((at_us.saturating_add(down_us), TimedFault::Restart { node }));
                }
                FaultSpec::MemPressure { node, at_us, pages } => {
                    out.push((at_us, TimedFault::MemPressure { node, pages }));
                }
                FaultSpec::DiskErrors { .. }
                | FaultSpec::DiskSlow { .. }
                | FaultSpec::BarrierDrops { .. } => {}
            }
        }
        out.sort_by_key(|&(at, _)| at);
        out
    }

    /// Decide the fate of a disk request submitted on `node` at `now_us`.
    /// Error specs are consulted before slow specs (a failed request
    /// cannot also be slow); within a class, plan order wins.
    pub fn disk_outcome(&mut self, node: usize, now_us: u64) -> DiskOutcome {
        for f in &self.plan.faults {
            if let FaultSpec::DiskErrors {
                node: n,
                p,
                from_us,
                until_us,
            } = *f
            {
                if n as usize == node
                    && now_us >= from_us
                    && now_us < until_us
                    && self.disk_rng.chance(p)
                {
                    self.disk_errors[node] += 1;
                    return DiskOutcome::Error;
                }
            }
        }
        for f in &self.plan.faults {
            if let FaultSpec::DiskSlow {
                node: n,
                penalty_us,
                p,
                from_us,
                until_us,
            } = *f
            {
                if n as usize == node
                    && now_us >= from_us
                    && now_us < until_us
                    && self.disk_rng.chance(p)
                {
                    return DiskOutcome::Slow(penalty_us);
                }
            }
        }
        DiskOutcome::Ok
    }

    /// Whether the barrier release message for `job` at `now_us` is
    /// dropped (the blocked ranks then wait for the timeout re-issue).
    pub fn barrier_dropped(&mut self, job: usize, now_us: u64) -> bool {
        for f in &self.plan.faults {
            if let FaultSpec::BarrierDrops {
                job: j,
                p,
                from_us,
                until_us,
            } = *f
            {
                if j as usize == job
                    && now_us >= from_us
                    && now_us < until_us
                    && self.net_rng.chance(p)
                {
                    return true;
                }
            }
        }
        false
    }

    /// Cumulative injected disk errors on `node` (drives the `ai`
    /// degradation threshold, [`RecoveryPolicy::ai_degrade_after`]).
    pub fn disk_errors_on(&self, node: usize) -> u64 {
        self.disk_errors.get(node).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;

    fn plan_with(faults: Vec<FaultSpec>) -> FaultPlan {
        FaultPlan {
            faults,
            ..FaultPlan::empty(0xC4A0)
        }
    }

    #[test]
    fn same_plan_same_decision_sequence() {
        let plan = plan_with(vec![
            FaultSpec::DiskErrors {
                node: 0,
                p: 0.3,
                from_us: 0,
                until_us: u64::MAX,
            },
            FaultSpec::BarrierDrops {
                job: 0,
                p: 0.3,
                from_us: 0,
                until_us: u64::MAX,
            },
        ]);
        let mut a = FaultInjector::new(plan.clone(), 1);
        let mut b = FaultInjector::new(plan, 1);
        for t in 0..200u64 {
            assert_eq!(a.disk_outcome(0, t), b.disk_outcome(0, t));
            assert_eq!(a.barrier_dropped(0, t), b.barrier_dropped(0, t));
        }
        assert_eq!(a.disk_errors_on(0), b.disk_errors_on(0));
        assert!(a.disk_errors_on(0) > 0, "p=0.3 over 200 draws must hit");
    }

    #[test]
    fn disk_and_net_streams_are_independent() {
        // Consuming disk draws must not shift the barrier-drop sequence.
        let plan = plan_with(vec![
            FaultSpec::DiskErrors {
                node: 0,
                p: 0.5,
                from_us: 0,
                until_us: u64::MAX,
            },
            FaultSpec::BarrierDrops {
                job: 0,
                p: 0.5,
                from_us: 0,
                until_us: u64::MAX,
            },
        ]);
        let mut pure = FaultInjector::new(plan.clone(), 1);
        let net_only: Vec<bool> = (0..64).map(|t| pure.barrier_dropped(0, t)).collect();
        let mut mixed = FaultInjector::new(plan, 1);
        let net_mixed: Vec<bool> = (0..64)
            .map(|t| {
                let _ = mixed.disk_outcome(0, t);
                mixed.barrier_dropped(0, t)
            })
            .collect();
        assert_eq!(net_only, net_mixed);
    }

    #[test]
    fn windows_gate_injection() {
        let plan = plan_with(vec![FaultSpec::DiskErrors {
            node: 0,
            p: 1.0,
            from_us: 100,
            until_us: 200,
        }]);
        let mut inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.disk_outcome(0, 99), DiskOutcome::Ok);
        assert_eq!(inj.disk_outcome(0, 100), DiskOutcome::Error);
        assert_eq!(inj.disk_outcome(0, 199), DiskOutcome::Error);
        assert_eq!(inj.disk_outcome(0, 200), DiskOutcome::Ok);
        assert_eq!(inj.disk_outcome(1, 150), DiskOutcome::Ok, "other node");
    }

    #[test]
    fn error_wins_over_slow_and_crash_pairs_restart() {
        let plan = plan_with(vec![
            FaultSpec::DiskSlow {
                node: 0,
                penalty_us: 5_000,
                p: 1.0,
                from_us: 0,
                until_us: u64::MAX,
            },
            FaultSpec::DiskErrors {
                node: 0,
                p: 1.0,
                from_us: 0,
                until_us: u64::MAX,
            },
            FaultSpec::NodeCrash {
                node: 0,
                at_us: 50,
                down_us: 10,
            },
        ]);
        let mut inj = FaultInjector::new(plan, 1);
        assert_eq!(inj.disk_outcome(0, 0), DiskOutcome::Error);
        assert_eq!(
            inj.timed(),
            vec![
                (50, TimedFault::Crash { node: 0 }),
                (60, TimedFault::Restart { node: 0 }),
            ]
        );
    }
}
