//! The fault plan: a committed, seeded description of injected failures.
//!
//! A plan is deliberately *declarative*: it names windows, probabilities,
//! and instants, and leaves every probabilistic draw to the
//! [`FaultInjector`](crate::FaultInjector) so that the draw order — and
//! therefore the whole simulation — is reproducible from the seed.
//!
//! Plans serialize through [`agp_metrics::Json`] (the workspace's
//! deterministic, dependency-free JSON model) so `plans/*.json` files are
//! byte-stable and the parser is strict: unknown fields are errors, not
//! silently ignored typos. Integer fields are carried as JSON numbers and
//! must stay below 2^53 (the exact-integer range of an IEEE double).

use crate::error::PlanError;
use agp_metrics::Json;
use serde::{Deserialize, Serialize};

/// Version stamped into every serialized plan; bump on breaking changes.
pub const FAULT_PLAN_SCHEMA_VERSION: u32 = 1;

/// Sanity cap on a single latency spike: one simulated hour per request
/// is a wedged device, not a spike — reject the plan instead of stalling.
pub const MAX_PENALTY_US: u64 = 3_600_000_000;

/// Sanity cap on a crash outage: a day of simulated downtime outlives
/// every workload in the registry.
pub const MAX_DOWN_US: u64 = 86_400_000_000;

/// Sanity cap on a memory-pressure burst (2^24 frames = 64 GiB of 4 KiB
/// pages, beyond any configured node).
pub const MAX_PAGES: u64 = 1 << 24;

// Referenced only from `#[serde(default = "...")]` attributes, which the
// dependency-stubbed offline build expands to nothing.
#[allow(dead_code)]
fn schema_version_default() -> u32 {
    FAULT_PLAN_SCHEMA_VERSION
}

#[allow(dead_code)]
fn until_default() -> u64 {
    u64::MAX
}

/// One injected failure mode. Windows are half-open `[from_us, until_us)`
/// in sim time; probabilities are per *decision* (per disk request, per
/// barrier release), not per unit time, so they compose with the
/// simulation's own event density.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FaultSpec {
    /// Each disk request submitted on `node` inside the window fails with
    /// probability `p` (a transient medium error: the device burns its
    /// command overhead and reports failure; no pages move).
    DiskErrors {
        /// Target node index.
        node: u32,
        /// Per-request failure probability in `[0, 1]`.
        p: f64,
        /// Window start, µs (default 0).
        #[serde(default)]
        from_us: u64,
        /// Window end, µs, exclusive (default: forever).
        #[serde(default = "until_default")]
        until_us: u64,
    },
    /// Each disk request submitted on `node` inside the window is slowed
    /// by `penalty_us` with probability `p` (a latency spike: thermal
    /// recalibration, firmware GC, a bus retry storm).
    DiskSlow {
        /// Target node index.
        node: u32,
        /// Added service latency per affected request, µs.
        penalty_us: u64,
        /// Per-request spike probability in `[0, 1]`.
        p: f64,
        /// Window start, µs (default 0).
        #[serde(default)]
        from_us: u64,
        /// Window end, µs, exclusive (default: forever).
        #[serde(default = "until_default")]
        until_us: u64,
    },
    /// The barrier release message for `job` is dropped with probability
    /// `p` inside the window; blocked ranks sit until the barrier timeout
    /// re-issues it (see [`RecoveryPolicy::barrier_timeout_us`]).
    BarrierDrops {
        /// Target job index.
        job: u32,
        /// Per-release drop probability in `[0, 1]`.
        p: f64,
        /// Window start, µs (default 0).
        #[serde(default)]
        from_us: u64,
        /// Window end, µs, exclusive (default: forever).
        #[serde(default = "until_default")]
        until_us: u64,
    },
    /// `node` crashes at `at_us` and restarts `down_us` later. Every job
    /// with a rank on the node loses its volatile state: the cluster
    /// requeues those jobs (restarted from iteration 0 — there is no
    /// checkpointing in the model) and the gang keeps rotating over the
    /// survivors instead of wedging.
    NodeCrash {
        /// Crashing node index.
        node: u32,
        /// Crash instant, µs.
        at_us: u64,
        /// Outage duration, µs (the restart fires at `at_us + down_us`).
        down_us: u64,
    },
    /// A transient memory-pressure burst on `node` at `at_us`: an
    /// external agent (in the paper's setting, a daemon waking up)
    /// demands `pages` frames, forcing an immediate reclaim of that many
    /// pages through the normal eviction path.
    MemPressure {
        /// Target node index.
        node: u32,
        /// Burst instant, µs.
        at_us: u64,
        /// Frames reclaimed by the burst.
        pages: u64,
    },
}

/// Recovery knobs consumed by the cluster simulation. All defaults are
/// deliberately conservative; a plan may override any subset.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RecoveryPolicy {
    /// Retries after a failed disk request before the transient fault is
    /// considered cleared (the attempt after the last retry always
    /// succeeds — the injected errors model *transient* media failures).
    pub io_retries: u32,
    /// Backoff before the first retry, µs; doubles per attempt.
    pub io_backoff_us: u64,
    /// Upper bound on any single backoff, µs.
    pub io_backoff_cap_us: u64,
    /// Injected disk errors on a node after which adaptive page-in (`ai`)
    /// degrades to plain demand paging on that node (bulk replay reads
    /// amplify a flaky disk; falling back sheds the amplification).
    pub ai_degrade_after: u32,
    /// Barrier release re-issue timeout, µs. Defaults to
    /// `agp-net`'s documented barrier timeout (60 s).
    pub barrier_timeout_us: u64,
    /// Re-issue attempts before the release is forced through (the
    /// network fault is transient; delivery is guaranteed eventually).
    pub barrier_retries: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            io_retries: 4,
            io_backoff_us: 2_000,
            io_backoff_cap_us: 64_000,
            ai_degrade_after: 3,
            barrier_timeout_us: 60_000_000,
            barrier_retries: 8,
        }
    }
}

impl RecoveryPolicy {
    /// Backoff before retry number `attempt` (0-based): capped
    /// exponential, `min(io_backoff_us << attempt, io_backoff_cap_us)`.
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        let shifted = self
            .io_backoff_us
            .checked_shl(attempt.min(32))
            .unwrap_or(self.io_backoff_cap_us);
        shifted.min(self.io_backoff_cap_us)
    }

    /// Whether disk-request retry number `attempt` (0-based) falls past
    /// the retry budget — the point at which the simulation forces the
    /// request through and the watchdog's recovery-exhaustion trigger
    /// fires.
    pub fn io_exhausted(&self, attempt: u32) -> bool {
        attempt >= self.io_retries
    }

    /// Whether barrier re-issue number `attempt` (1-based) falls past
    /// the re-issue budget — the point at which the release is forced
    /// through and the watchdog's recovery-exhaustion trigger fires.
    pub fn barrier_exhausted(&self, attempt: u32) -> bool {
        attempt > self.barrier_retries
    }
}

/// A complete, committable chaos scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Plan schema version (see [`FAULT_PLAN_SCHEMA_VERSION`]).
    #[serde(default = "schema_version_default")]
    pub schema_version: u32,
    /// Seed for the injector's RNG substreams. Independent of the
    /// simulation seed: the same weather can be replayed over different
    /// workload seeds and vice versa.
    pub seed: u64,
    /// The injected failure modes.
    #[serde(default)]
    pub faults: Vec<FaultSpec>,
    /// Recovery knobs.
    #[serde(default)]
    pub recovery: RecoveryPolicy,
}

impl FaultPlan {
    /// An empty plan (no faults, default recovery) — useful as a base.
    pub fn empty(seed: u64) -> FaultPlan {
        FaultPlan {
            schema_version: FAULT_PLAN_SCHEMA_VERSION,
            seed,
            faults: Vec::new(),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// The built-in smoke scenario used by `agp chaos` when no plan file
    /// is given, and the generator for the committed `plans/smoke.json`.
    /// Geometry: assumes ≥ 2 nodes and ≥ 2 jobs (the chaos demo config).
    /// It exercises every fault class: early disk errors and a latency
    /// spike window on node 0, barrier drops for job 0, a memory-pressure
    /// burst, and a crash/restart of node 1 mid-run.
    pub fn smoke(seed: u64) -> FaultPlan {
        FaultPlan {
            schema_version: FAULT_PLAN_SCHEMA_VERSION,
            seed,
            faults: vec![
                FaultSpec::DiskErrors {
                    node: 0,
                    p: 0.08,
                    from_us: 0,
                    until_us: 400_000_000,
                },
                FaultSpec::DiskSlow {
                    node: 0,
                    penalty_us: 15_000,
                    p: 0.10,
                    from_us: 0,
                    until_us: 600_000_000,
                },
                FaultSpec::BarrierDrops {
                    job: 0,
                    p: 0.02,
                    from_us: 0,
                    until_us: u64::MAX,
                },
                FaultSpec::MemPressure {
                    node: 0,
                    at_us: 30_000_000,
                    pages: 512,
                },
                FaultSpec::NodeCrash {
                    node: 1,
                    at_us: 120_000_000,
                    down_us: 45_000_000,
                },
            ],
            recovery: RecoveryPolicy::default(),
        }
    }

    /// The built-in recovery-exhaustion scenario used by the watchdog
    /// trip smoke, and the generator for the committed `plans/trip.json`.
    /// Node 0's disk fails **every** request over a long window while the
    /// retry budget is cut to 2, so the very first disk request burns
    /// through its retries deterministically — with the flight recorder
    /// armed, the recovery-exhaustion watchdog trips within the first
    /// switch regardless of workload seed.
    pub fn trip(seed: u64) -> FaultPlan {
        FaultPlan {
            schema_version: FAULT_PLAN_SCHEMA_VERSION,
            seed,
            faults: vec![FaultSpec::DiskErrors {
                node: 0,
                p: 1.0,
                from_us: 0,
                until_us: u64::MAX,
            }],
            recovery: RecoveryPolicy {
                io_retries: 2,
                ..RecoveryPolicy::default()
            },
        }
    }

    /// Validate the plan against a cluster geometry. `nodes`/`jobs` are
    /// the config's counts; out-of-range targets are configuration
    /// errors, not silent no-ops. Beyond per-fault shape checks this also
    /// rejects whole-plan pathologies the fuzzer's mutators can produce:
    /// exact-duplicate faults (double-drawing the same failure) and
    /// overlapping crash windows on one node (crashing while down).
    pub fn validate(&self, nodes: usize, jobs: usize) -> Result<(), PlanError> {
        if self.schema_version != FAULT_PLAN_SCHEMA_VERSION {
            return Err(PlanError::SchemaVersion {
                found: self.schema_version,
                expected: FAULT_PLAN_SCHEMA_VERSION,
            });
        }
        let chk_p = |p: f64, what: &str| {
            if !(0.0..=1.0).contains(&p) {
                Err(PlanError::Probability {
                    what: what.to_string(),
                    p,
                })
            } else {
                Ok(())
            }
        };
        let chk_node = |n: u32, what: &str| {
            if (n as usize) < nodes {
                Ok(())
            } else {
                Err(PlanError::NodeOutOfRange {
                    what: what.to_string(),
                    node: n,
                    nodes,
                })
            }
        };
        let chk_window = |from_us: u64, until_us: u64, what: &str| {
            if from_us >= until_us {
                Err(PlanError::EmptyWindow {
                    what: what.to_string(),
                    from_us,
                    until_us,
                })
            } else {
                Ok(())
            }
        };
        let chk_cap = |value: u64, max: u64, field: &'static str, what: &str| {
            if value > max {
                Err(PlanError::AbsurdIntensity {
                    what: what.to_string(),
                    field,
                    value,
                    max,
                })
            } else {
                Ok(())
            }
        };
        for (i, f) in self.faults.iter().enumerate() {
            let what = format!("faults[{i}]");
            match *f {
                FaultSpec::DiskErrors {
                    node,
                    p,
                    from_us,
                    until_us,
                } => {
                    chk_node(node, &what)?;
                    chk_p(p, &what)?;
                    chk_window(from_us, until_us, &what)?;
                }
                FaultSpec::DiskSlow {
                    node,
                    penalty_us,
                    p,
                    from_us,
                    until_us,
                } => {
                    chk_node(node, &what)?;
                    chk_p(p, &what)?;
                    chk_window(from_us, until_us, &what)?;
                    chk_cap(penalty_us, MAX_PENALTY_US, "penalty_us", &what)?;
                }
                FaultSpec::BarrierDrops {
                    job,
                    p,
                    from_us,
                    until_us,
                } => {
                    if job as usize >= jobs {
                        return Err(PlanError::JobOutOfRange { what, job, jobs });
                    }
                    chk_p(p, &what)?;
                    chk_window(from_us, until_us, &what)?;
                }
                FaultSpec::NodeCrash { node, down_us, .. } => {
                    chk_node(node, &what)?;
                    if down_us == 0 {
                        return Err(PlanError::ZeroMagnitude {
                            what,
                            field: "down_us",
                        });
                    }
                    chk_cap(down_us, MAX_DOWN_US, "down_us", &what)?;
                }
                FaultSpec::MemPressure { node, pages, .. } => {
                    chk_node(node, &what)?;
                    if pages == 0 {
                        return Err(PlanError::ZeroMagnitude {
                            what,
                            field: "pages",
                        });
                    }
                    chk_cap(pages, MAX_PAGES, "pages", &what)?;
                }
            }
        }
        // Whole-plan checks, quadratic over a list that is small by
        // construction (committed plans and generated plans alike).
        for (j, f) in self.faults.iter().enumerate() {
            for (i, earlier) in self.faults[..j].iter().enumerate() {
                if earlier == f {
                    return Err(PlanError::DuplicateFault {
                        first: i,
                        second: j,
                    });
                }
                if let (
                    FaultSpec::NodeCrash {
                        node: n1,
                        at_us: a1,
                        down_us: d1,
                    },
                    FaultSpec::NodeCrash {
                        node: n2,
                        at_us: a2,
                        down_us: d2,
                    },
                ) = (earlier, f)
                {
                    let overlap =
                        n1 == n2 && *a1 < a2.saturating_add(*d2) && *a2 < a1.saturating_add(*d1);
                    if overlap {
                        return Err(PlanError::OverlappingCrashes {
                            node: *n1,
                            first: i,
                            second: j,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Parse a plan from JSON text (strict: unknown fields are errors).
    pub fn from_json_str(text: &str) -> Result<FaultPlan, PlanError> {
        let doc = Json::parse(text).map_err(|e| PlanError::Parse(e.to_string()))?;
        plan_from_json(&doc)
    }

    /// The plan as a [`Json`] document with a fixed field order
    /// (windows open until forever omit `until_us`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), num(self.schema_version as u64)),
            ("seed".into(), num(self.seed)),
            (
                "faults".into(),
                Json::Arr(self.faults.iter().map(spec_json).collect()),
            ),
            (
                "recovery".into(),
                Json::Obj(vec![
                    ("io_retries".into(), num(self.recovery.io_retries as u64)),
                    ("io_backoff_us".into(), num(self.recovery.io_backoff_us)),
                    (
                        "io_backoff_cap_us".into(),
                        num(self.recovery.io_backoff_cap_us),
                    ),
                    (
                        "ai_degrade_after".into(),
                        num(self.recovery.ai_degrade_after as u64),
                    ),
                    (
                        "barrier_timeout_us".into(),
                        num(self.recovery.barrier_timeout_us),
                    ),
                    (
                        "barrier_retries".into(),
                        num(self.recovery.barrier_retries as u64),
                    ),
                ]),
            ),
        ])
    }

    /// Serialize the plan as pretty JSON with a trailing newline (the
    /// format committed under `plans/`). Byte-deterministic.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        pretty(&self.to_json(), 0, &mut out);
        out.push('\n');
        out
    }
}

fn num(v: u64) -> Json {
    debug_assert!(v < (1u64 << 53), "JSON number out of exact-integer range");
    Json::Num(v as f64)
}

fn spec_json(f: &FaultSpec) -> Json {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    let mut push = |k: &str, v: Json| pairs.push((k.into(), v));
    let window = |push: &mut dyn FnMut(&str, Json), from_us: u64, until_us: u64| {
        push("from_us", num(from_us));
        if until_us != u64::MAX {
            push("until_us", num(until_us));
        }
    };
    match *f {
        FaultSpec::DiskErrors {
            node,
            p,
            from_us,
            until_us,
        } => {
            push("kind", Json::Str("disk_errors".into()));
            push("node", num(node as u64));
            push("p", Json::Num(p));
            window(&mut push, from_us, until_us);
        }
        FaultSpec::DiskSlow {
            node,
            penalty_us,
            p,
            from_us,
            until_us,
        } => {
            push("kind", Json::Str("disk_slow".into()));
            push("node", num(node as u64));
            push("penalty_us", num(penalty_us));
            push("p", Json::Num(p));
            window(&mut push, from_us, until_us);
        }
        FaultSpec::BarrierDrops {
            job,
            p,
            from_us,
            until_us,
        } => {
            push("kind", Json::Str("barrier_drops".into()));
            push("job", num(job as u64));
            push("p", Json::Num(p));
            window(&mut push, from_us, until_us);
        }
        FaultSpec::NodeCrash {
            node,
            at_us,
            down_us,
        } => {
            push("kind", Json::Str("node_crash".into()));
            push("node", num(node as u64));
            push("at_us", num(at_us));
            push("down_us", num(down_us));
        }
        FaultSpec::MemPressure { node, at_us, pages } => {
            push("kind", Json::Str("mem_pressure".into()));
            push("node", num(node as u64));
            push("at_us", num(at_us));
            push("pages", num(pages));
        }
    }
    Json::Obj(pairs)
}

/// Strict field reader over one JSON object: every `take` marks the key
/// consumed; [`Fields::finish`] rejects leftovers (typo protection a
/// committed plan format needs).
struct Fields<'a> {
    what: String,
    pairs: &'a [(String, Json)],
    seen: Vec<&'a str>,
}

impl<'a> Fields<'a> {
    fn of(doc: &'a Json, what: &str) -> Result<Fields<'a>, PlanError> {
        let pairs = doc.as_object().ok_or_else(|| PlanError::NotObject {
            what: what.to_string(),
        })?;
        Ok(Fields {
            what: what.to_string(),
            pairs,
            seen: Vec::new(),
        })
    }

    fn take(&mut self, key: &'a str) -> Option<&'a Json> {
        self.seen.push(key);
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn u64(&mut self, key: &'static str) -> Result<u64, PlanError> {
        let what = self.what.clone();
        let v = self.take(key).ok_or_else(|| PlanError::MissingField {
            what: what.clone(),
            field: key,
        })?;
        to_u64(v).ok_or(PlanError::BadField {
            what,
            field: key,
            expected: "a non-negative integer",
        })
    }

    fn u64_or(&mut self, key: &'static str, default: u64) -> Result<u64, PlanError> {
        match self.take(key) {
            None => Ok(default),
            Some(v) => to_u64(v).ok_or_else(|| PlanError::BadField {
                what: self.what.clone(),
                field: key,
                expected: "a non-negative integer",
            }),
        }
    }

    fn f64(&mut self, key: &'static str) -> Result<f64, PlanError> {
        let what = self.what.clone();
        let v = self.take(key).ok_or_else(|| PlanError::MissingField {
            what: what.clone(),
            field: key,
        })?;
        v.as_f64().ok_or(PlanError::BadField {
            what,
            field: key,
            expected: "a number",
        })
    }

    fn finish(self) -> Result<(), PlanError> {
        for (k, _) in self.pairs {
            if !self.seen.contains(&k.as_str()) {
                return Err(PlanError::UnknownField {
                    what: self.what,
                    field: k.clone(),
                });
            }
        }
        Ok(())
    }
}

fn to_u64(v: &Json) -> Option<u64> {
    let f = v.as_f64()?;
    if f >= 0.0 && f.fract() == 0.0 && f < (1u64 << 53) as f64 {
        Some(f as u64)
    } else {
        None
    }
}

fn plan_from_json(doc: &Json) -> Result<FaultPlan, PlanError> {
    let mut top = Fields::of(doc, "plan")?;
    let schema_version = top.u64_or("schema_version", u64::from(FAULT_PLAN_SCHEMA_VERSION))? as u32;
    let seed = top.u64("seed")?;
    let faults = match top.take("faults") {
        None => Vec::new(),
        Some(v) => {
            let items = v.as_array().ok_or(PlanError::FaultsNotArray)?;
            items
                .iter()
                .enumerate()
                .map(|(i, item)| spec_from_json(item, i))
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    let recovery = match top.take("recovery") {
        None => RecoveryPolicy::default(),
        Some(v) => recovery_from_json(v)?,
    };
    top.finish()?;
    Ok(FaultPlan {
        schema_version,
        seed,
        faults,
        recovery,
    })
}

fn recovery_from_json(doc: &Json) -> Result<RecoveryPolicy, PlanError> {
    let d = RecoveryPolicy::default();
    let mut f = Fields::of(doc, "recovery")?;
    let out = RecoveryPolicy {
        io_retries: f.u64_or("io_retries", d.io_retries as u64)? as u32,
        io_backoff_us: f.u64_or("io_backoff_us", d.io_backoff_us)?,
        io_backoff_cap_us: f.u64_or("io_backoff_cap_us", d.io_backoff_cap_us)?,
        ai_degrade_after: f.u64_or("ai_degrade_after", d.ai_degrade_after as u64)? as u32,
        barrier_timeout_us: f.u64_or("barrier_timeout_us", d.barrier_timeout_us)?,
        barrier_retries: f.u64_or("barrier_retries", d.barrier_retries as u64)? as u32,
    };
    f.finish()?;
    Ok(out)
}

fn spec_from_json(doc: &Json, index: usize) -> Result<FaultSpec, PlanError> {
    let what = format!("faults[{index}]");
    let mut f = Fields::of(doc, &what)?;
    let kind = f
        .take("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| PlanError::MissingField {
            what: what.clone(),
            field: "kind",
        })?
        .to_string();
    let spec = match kind.as_str() {
        "disk_errors" => FaultSpec::DiskErrors {
            node: f.u64("node")? as u32,
            p: f.f64("p")?,
            from_us: f.u64_or("from_us", 0)?,
            until_us: f.u64_or("until_us", u64::MAX)?,
        },
        "disk_slow" => FaultSpec::DiskSlow {
            node: f.u64("node")? as u32,
            penalty_us: f.u64("penalty_us")?,
            p: f.f64("p")?,
            from_us: f.u64_or("from_us", 0)?,
            until_us: f.u64_or("until_us", u64::MAX)?,
        },
        "barrier_drops" => FaultSpec::BarrierDrops {
            job: f.u64("job")? as u32,
            p: f.f64("p")?,
            from_us: f.u64_or("from_us", 0)?,
            until_us: f.u64_or("until_us", u64::MAX)?,
        },
        "node_crash" => FaultSpec::NodeCrash {
            node: f.u64("node")? as u32,
            at_us: f.u64("at_us")?,
            down_us: f.u64("down_us")?,
        },
        "mem_pressure" => FaultSpec::MemPressure {
            node: f.u64("node")? as u32,
            at_us: f.u64("at_us")?,
            pages: f.u64("pages")?,
        },
        other => {
            return Err(PlanError::UnknownKind {
                what,
                kind: other.to_string(),
            })
        }
    };
    f.finish()?;
    Ok(spec)
}

/// Two-space-indented pretty printer (same style as the other committed
/// JSON artifacts in this workspace).
fn pretty(v: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close = "  ".repeat(indent);
    match v {
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push(']');
        }
        Json::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                out.push_str(&pad);
                out.push('"');
                out.push_str(k);
                out.push_str("\": ");
                pretty(val, indent + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&close);
            out.push('}');
        }
        other => out.push_str(&other.to_string_compact()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_plan_roundtrips_and_validates() {
        let plan = FaultPlan::smoke(42);
        plan.validate(2, 2).expect("smoke plan valid for 2x2");
        let text = plan.to_json_string();
        let back = FaultPlan::from_json_str(&text).expect("roundtrip");
        assert_eq!(plan, back);
        assert_eq!(text, back.to_json_string(), "serialization is stable");
    }

    #[test]
    fn parser_rejects_unknown_fields_and_kinds() {
        let bad_field = r#"{ "seed": 1, "faults": [
            { "kind": "node_crash", "node": 0, "at_us": 5, "down_us": 5, "oops": 1 }
        ] }"#;
        let err = FaultPlan::from_json_str(bad_field).unwrap_err();
        assert!(
            matches!(&err, PlanError::UnknownField { field, .. } if field == "oops"),
            "{err}"
        );
        assert!(err.to_string().contains("unknown field `oops`"), "{err}");
        let bad_kind = r#"{ "seed": 1, "faults": [ { "kind": "gamma_rays" } ] }"#;
        let err = FaultPlan::from_json_str(bad_kind).unwrap_err();
        assert!(
            matches!(&err, PlanError::UnknownKind { kind, .. } if kind == "gamma_rays"),
            "{err}"
        );
        assert!(err.to_string().contains("unknown fault kind"), "{err}");
    }

    #[test]
    fn parser_returns_typed_shape_errors() {
        assert!(matches!(
            FaultPlan::from_json_str("not json").unwrap_err(),
            PlanError::Parse(_)
        ));
        assert!(matches!(
            FaultPlan::from_json_str("[]").unwrap_err(),
            PlanError::NotObject { .. }
        ));
        assert!(matches!(
            FaultPlan::from_json_str(r#"{ "seed": 1, "faults": 3 }"#).unwrap_err(),
            PlanError::FaultsNotArray
        ));
        assert!(matches!(
            FaultPlan::from_json_str(r#"{ "faults": [] }"#).unwrap_err(),
            PlanError::MissingField { field: "seed", .. }
        ));
        assert!(matches!(
            FaultPlan::from_json_str(r#"{ "seed": -4 }"#).unwrap_err(),
            PlanError::BadField { field: "seed", .. }
        ));
    }

    #[test]
    fn validate_rejects_duplicates_overlaps_and_absurd_intensities() {
        let dup = FaultSpec::DiskErrors {
            node: 0,
            p: 0.5,
            from_us: 0,
            until_us: u64::MAX,
        };
        let mut plan = FaultPlan::empty(1);
        plan.faults = vec![dup.clone(), dup];
        assert!(matches!(
            plan.validate(1, 1).unwrap_err(),
            PlanError::DuplicateFault {
                first: 0,
                second: 1
            }
        ));
        let mut crashes = FaultPlan::empty(1);
        crashes.faults = vec![
            FaultSpec::NodeCrash {
                node: 0,
                at_us: 100,
                down_us: 50,
            },
            FaultSpec::NodeCrash {
                node: 0,
                at_us: 120,
                down_us: 10,
            },
        ];
        assert!(matches!(
            crashes.validate(1, 1).unwrap_err(),
            PlanError::OverlappingCrashes {
                node: 0,
                first: 0,
                second: 1
            }
        ));
        // Back-to-back crash windows (half-open) on one node are fine, and
        // overlapping windows on *different* nodes are fine.
        crashes.faults[1] = FaultSpec::NodeCrash {
            node: 0,
            at_us: 150,
            down_us: 10,
        };
        crashes
            .validate(1, 1)
            .expect("adjacent windows are disjoint");
        crashes.faults[1] = FaultSpec::NodeCrash {
            node: 1,
            at_us: 120,
            down_us: 10,
        };
        crashes.validate(2, 1).expect("different nodes may overlap");
        let mut absurd = FaultPlan::empty(1);
        absurd.faults = vec![FaultSpec::MemPressure {
            node: 0,
            at_us: 0,
            pages: MAX_PAGES + 1,
        }];
        assert!(matches!(
            absurd.validate(1, 1).unwrap_err(),
            PlanError::AbsurdIntensity { field: "pages", .. }
        ));
        absurd.faults = vec![FaultSpec::DiskSlow {
            node: 0,
            penalty_us: MAX_PENALTY_US + 1,
            p: 0.1,
            from_us: 0,
            until_us: u64::MAX,
        }];
        assert!(matches!(
            absurd.validate(1, 1).unwrap_err(),
            PlanError::AbsurdIntensity {
                field: "penalty_us",
                ..
            }
        ));
        absurd.faults = vec![FaultSpec::NodeCrash {
            node: 0,
            at_us: 0,
            down_us: MAX_DOWN_US + 1,
        }];
        assert!(matches!(
            absurd.validate(1, 1).unwrap_err(),
            PlanError::AbsurdIntensity {
                field: "down_us",
                ..
            }
        ));
    }

    #[test]
    fn validate_rejects_zero_width_windows_with_a_typed_error() {
        let mut plan = FaultPlan::empty(1);
        plan.faults = vec![FaultSpec::DiskErrors {
            node: 0,
            p: 0.5,
            from_us: 7,
            until_us: 7,
        }];
        assert!(matches!(
            plan.validate(1, 1).unwrap_err(),
            PlanError::EmptyWindow {
                from_us: 7,
                until_us: 7,
                ..
            }
        ));
    }

    #[test]
    fn validate_rejects_bad_geometry_and_probabilities() {
        let plan = FaultPlan::smoke(42);
        // Node 1 crash is out of range on a 1-node cluster.
        assert!(plan.validate(1, 2).is_err());
        let mut bad = FaultPlan::empty(1);
        bad.faults.push(FaultSpec::DiskErrors {
            node: 0,
            p: 1.5,
            from_us: 0,
            until_us: u64::MAX,
        });
        assert!(bad.validate(1, 1).is_err());
        let mut zero = FaultPlan::empty(1);
        zero.faults.push(FaultSpec::NodeCrash {
            node: 0,
            at_us: 5,
            down_us: 0,
        });
        assert!(zero.validate(1, 1).is_err());
    }

    #[test]
    fn schema_version_gate_rejects_future_plans() {
        let mut plan = FaultPlan::empty(7);
        plan.schema_version = FAULT_PLAN_SCHEMA_VERSION + 1;
        assert!(plan.validate(1, 1).is_err());
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RecoveryPolicy::default();
        assert_eq!(r.backoff_us(0), 2_000);
        assert_eq!(r.backoff_us(1), 4_000);
        assert_eq!(r.backoff_us(4), 32_000);
        assert_eq!(r.backoff_us(5), 64_000);
        assert_eq!(r.backoff_us(63), 64_000, "huge attempts stay capped");
    }

    #[test]
    fn exhaustion_thresholds_match_forced_outcomes() {
        let r = RecoveryPolicy::default();
        // I/O attempts are 0-based: attempts 0..3 retry, attempt 4 is
        // forced through.
        assert!(!r.io_exhausted(3));
        assert!(r.io_exhausted(4));
        // Barrier re-issues are 1-based: attempts 1..=8 re-issue,
        // attempt 9 forces the release.
        assert!(!r.barrier_exhausted(8));
        assert!(r.barrier_exhausted(9));
    }

    #[test]
    fn trip_plan_validates_and_exhausts_on_first_request() {
        let plan = FaultPlan::trip(7);
        plan.validate(1, 1).expect("trip plan must validate");
        assert_eq!(plan.recovery.io_retries, 2);
        assert!(plan.recovery.io_exhausted(2));
        let round = FaultPlan::from_json_str(&plan.to_json_string()).expect("round trip");
        assert_eq!(round, plan);
    }

    #[test]
    fn committed_trip_plan_matches_the_generator() {
        let committed = include_str!("../../../plans/trip.json");
        // The CLI's default chaos seed; `agp chaos --emit-trip-plan
        // plans/trip.json` regenerates the file after a deliberate change.
        assert_eq!(
            FaultPlan::trip(0x5EED_600D).to_json_string(),
            committed,
            "plans/trip.json drifted from FaultPlan::trip"
        );
        let plan = FaultPlan::from_json_str(committed).expect("committed plan parses");
        plan.validate(2, 2)
            .expect("trip plan valid for the chaos-demo geometry");
    }

    #[test]
    fn missing_fields_take_defaults() {
        let plan = FaultPlan::from_json_str(r#"{ "seed": 9 }"#).expect("minimal plan");
        assert_eq!(plan.schema_version, FAULT_PLAN_SCHEMA_VERSION);
        assert!(plan.faults.is_empty());
        assert_eq!(plan.recovery, RecoveryPolicy::default());
        let windowless = r#"{ "seed": 9, "faults": [
            { "kind": "disk_errors", "node": 0, "p": 0.5 }
        ] }"#;
        let plan = FaultPlan::from_json_str(windowless).expect("window defaults");
        assert_eq!(
            plan.faults[0],
            FaultSpec::DiskErrors {
                node: 0,
                p: 0.5,
                from_us: 0,
                until_us: u64::MAX,
            }
        );
    }
}
