//! Typed fault-plan errors.
//!
//! `FaultPlan::from_json_str` and `FaultPlan::validate` reject adversarial
//! input — the fuzzer feeds them mutated plans, so "bad plan" must be a
//! closed, matchable taxonomy rather than a formatted `String`. Every
//! variant's `Display` keeps the exact phrasing the string-error era used
//! (CLI output and tests key on those fragments); `From<PlanError> for
//! String` keeps legacy `Result<_, String>` callers compiling through `?`.

use std::fmt;

/// Everything that can be wrong with a fault plan, either as JSON text
/// (parse-time variants carry the offending field) or as a configuration
/// against a concrete cluster geometry (validation variants carry the
/// out-of-range value and the bound it crossed).
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    /// The text is not well-formed JSON at all.
    Parse(String),
    /// A node that must be a JSON object is not (`what` names it).
    NotObject {
        /// Which plan node ("plan", "recovery", "faults[i]").
        what: String,
    },
    /// `plan.faults` is present but not an array.
    FaultsNotArray,
    /// A required field is absent.
    MissingField {
        /// Which plan node the field belongs to.
        what: String,
        /// The missing key.
        field: &'static str,
    },
    /// A field is present with the wrong shape (`expected` describes the
    /// accepted shape, e.g. "a non-negative integer").
    BadField {
        /// Which plan node the field belongs to.
        what: String,
        /// The offending key.
        field: &'static str,
        /// Human description of the accepted shape.
        expected: &'static str,
    },
    /// Strict-parse leftover: a key no schema field consumed.
    UnknownField {
        /// Which plan node the field belongs to.
        what: String,
        /// The unconsumed key.
        field: String,
    },
    /// `kind` names no known fault class.
    UnknownKind {
        /// Which plan node the kind belongs to.
        what: String,
        /// The unrecognized kind string.
        kind: String,
    },
    /// The plan's schema version is not the one this build reads.
    SchemaVersion {
        /// Version found in the plan.
        found: u32,
        /// Version this build supports.
        expected: u32,
    },
    /// A probability fell outside `[0, 1]` (NaN included).
    Probability {
        /// Which fault carries it.
        what: String,
        /// The offending value.
        p: f64,
    },
    /// A fault targets a node the cluster does not have.
    NodeOutOfRange {
        /// Which fault targets it.
        what: String,
        /// The out-of-range node index.
        node: u32,
        /// How many nodes the cluster has.
        nodes: usize,
    },
    /// A fault targets a job the config does not define.
    JobOutOfRange {
        /// Which fault targets it.
        what: String,
        /// The out-of-range job index.
        job: u32,
        /// How many jobs the config has.
        jobs: usize,
    },
    /// A half-open window `[from_us, until_us)` selects nothing.
    EmptyWindow {
        /// Which fault carries it.
        what: String,
        /// Window start, µs.
        from_us: u64,
        /// Window end, µs.
        until_us: u64,
    },
    /// A strictly-positive magnitude (outage length, burst pages) is zero.
    ZeroMagnitude {
        /// Which fault carries it.
        what: String,
        /// The zero field.
        field: &'static str,
    },
    /// An intensity is implausibly large for the simulated regime — a
    /// fuzzer-mutated or fat-fingered plan, not a scenario.
    AbsurdIntensity {
        /// Which fault carries it.
        what: String,
        /// The offending field.
        field: &'static str,
        /// The offending value.
        value: u64,
        /// The sanity cap it crossed.
        max: u64,
    },
    /// Two faults are byte-for-byte identical — a duplicated entry, which
    /// would double-draw the same failure and silently skew probabilities.
    DuplicateFault {
        /// Index of the first copy.
        first: usize,
        /// Index of the duplicate.
        second: usize,
    },
    /// Two crash windows on the same node overlap: the node would crash
    /// while already down, which the restart model cannot represent.
    OverlappingCrashes {
        /// The doubly-crashed node.
        node: u32,
        /// Index of the earlier crash fault.
        first: usize,
        /// Index of the overlapping crash fault.
        second: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Parse(e) => write!(f, "fault plan parse error: {e}"),
            PlanError::NotObject { what } => write!(f, "{what}: expected a JSON object"),
            PlanError::FaultsNotArray => write!(f, "plan: `faults` must be an array"),
            PlanError::MissingField { what, field } => {
                if *field == "kind" {
                    write!(f, "{what}: missing string field `kind`")
                } else {
                    write!(f, "{what}: missing field `{field}`")
                }
            }
            PlanError::BadField {
                what,
                field,
                expected,
            } => write!(f, "{what}: `{field}` must be {expected}"),
            PlanError::UnknownField { what, field } => {
                write!(f, "{what}: unknown field `{field}`")
            }
            PlanError::UnknownKind { what, kind } => {
                write!(f, "{what}: unknown fault kind `{kind}`")
            }
            PlanError::SchemaVersion { found, expected } => write!(
                f,
                "fault plan schema v{found} unsupported (expected v{expected})"
            ),
            PlanError::Probability { what, p } => {
                write!(f, "{what}: probability {p} outside [0, 1]")
            }
            PlanError::NodeOutOfRange { what, node, nodes } => {
                write!(f, "{what}: node {node} out of range (cluster has {nodes})")
            }
            PlanError::JobOutOfRange { what, job, jobs } => {
                write!(f, "{what}: job {job} out of range (config has {jobs})")
            }
            PlanError::EmptyWindow {
                what,
                from_us,
                until_us,
            } => write!(f, "{what}: empty window [{from_us}, {until_us})"),
            PlanError::ZeroMagnitude { what, field } => {
                write!(f, "{what}: {field} must be > 0")
            }
            PlanError::AbsurdIntensity {
                what,
                field,
                value,
                max,
            } => write!(f, "{what}: {field} {value} exceeds the sanity cap {max}"),
            PlanError::DuplicateFault { first, second } => {
                write!(f, "faults[{second}]: exact duplicate of faults[{first}]")
            }
            PlanError::OverlappingCrashes {
                node,
                first,
                second,
            } => write!(
                f,
                "faults[{second}]: crash window on node {node} overlaps faults[{first}]"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<PlanError> for String {
    fn from(e: PlanError) -> String {
        e.to_string()
    }
}
