//! # agp-faults — deterministic fault injection (`agp-chaos`)
//!
//! The paper's gang scheduler ran on a real 5-node cluster where disks
//! stall, links drop messages, and nodes die; the reproduction's adaptive
//! policies (`so`/`ao`/`ai`/`bg`) are only trustworthy if they survive the
//! same weather. This crate supplies the *fault half* of that story:
//!
//! * [`FaultPlan`] — a seeded, schema-versioned description of what goes
//!   wrong and when: disk I/O errors and latency spikes, barrier
//!   release-message drops, node crash/restart pairs, and transient
//!   memory-pressure bursts. Plans are plain serde JSON so they can be
//!   committed (see `plans/smoke.json`) and replayed byte-for-byte.
//! * [`FaultInjector`] — the runtime oracle the cluster simulation
//!   consults. Every probabilistic decision comes from [`agp_sim::SimRng`]
//!   substreams forked from the plan's seed — never wall-clock, never a
//!   global RNG — so the same `(config seed, plan)` pair yields a
//!   byte-identical event trace on every run.
//! * [`fuzz`] — the search half: a seed-deterministic plan generator
//!   spanning the whole fault taxonomy, a closed run-classification
//!   taxonomy ([`fuzz::Verdict`]), and a delta-debugging shrinker that
//!   reduces a failing plan to a minimal reproducer (`agp chaos --fuzz`).
//! * [`RecoveryPolicy`] — the knobs for the *recovery half* implemented in
//!   `agp-cluster`: capped exponential retry/backoff for failed paging
//!   I/O, barrier timeout + re-issue, adaptive-page-in degradation after
//!   repeated disk errors, and crash requeue.
//!
//! The injector decides *whether* a fault fires; the cluster simulation
//! owns *what happens next* (retry, degrade, requeue) and emits the
//! corresponding `ObsEvent`s so `agp profile` / `agp explain` can
//! attribute degraded switches to a fault-taxonomy cause.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod fuzz;
mod inject;
mod plan;

pub use error::PlanError;
pub use inject::{DiskOutcome, FaultInjector, TimedFault};
pub use plan::{
    FaultPlan, FaultSpec, RecoveryPolicy, FAULT_PLAN_SCHEMA_VERSION, MAX_DOWN_US, MAX_PAGES,
    MAX_PENALTY_US,
};
