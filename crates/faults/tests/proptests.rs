//! Property tests for the fault-plan schema and the fuzzer's shrinker:
//! any in-range plan survives a JSON round-trip byte-for-byte stable,
//! plans from the fuzz generator are valid and round-trip, and
//! delta-debugged shrinks preserve the verdict class, never grow, and
//! reach a fixpoint.
//!
//! Requires the real `proptest`; the offline stub-build scratch drops this
//! file (see `.claude/skills/verify/SKILL.md`).

use agp_faults::fuzz::{plan_weight, shrink, GenBounds, PlanGen, Verdict};
use agp_faults::{FaultPlan, FaultSpec};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = FaultSpec> {
    let window = (0u64..u32::MAX as u64, 0u64..u32::MAX as u64);
    prop_oneof![
        (any::<u32>(), 0.0f64..=1.0, window).prop_map(|(node, p, (from_us, until_us))| {
            FaultSpec::DiskErrors {
                node,
                p,
                from_us,
                until_us,
            }
        }),
        (any::<u32>(), any::<u32>(), 0.0f64..=1.0, window).prop_map(
            |(node, penalty, p, (from_us, until_us))| FaultSpec::DiskSlow {
                node,
                penalty_us: penalty as u64,
                p,
                from_us,
                until_us,
            }
        ),
        (any::<u32>(), 0.0f64..=1.0, window).prop_map(|(job, p, (from_us, until_us))| {
            FaultSpec::BarrierDrops {
                job,
                p,
                from_us,
                until_us,
            }
        }),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(node, at, down)| {
            FaultSpec::NodeCrash {
                node,
                at_us: at as u64,
                down_us: down as u64,
            }
        }),
        (any::<u32>(), any::<u32>(), 1u64..1_000_000).prop_map(|(node, at, pages)| {
            FaultSpec::MemPressure {
                node,
                at_us: at as u64,
                pages,
            }
        }),
    ]
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        prop::collection::vec(spec_strategy(), 0..6),
        1u32..8,
        1u64..100_000,
    )
        .prop_map(|(seed, faults, io_retries, io_backoff_us)| {
            let mut plan = FaultPlan::empty(seed);
            plan.faults = faults;
            plan.recovery.io_retries = io_retries;
            plan.recovery.io_backoff_us = io_backoff_us;
            plan
        })
}

proptest! {
    /// Serialization is lossless and stable: parse(render(p)) == p, and
    /// rendering the parsed plan reproduces the bytes exactly (the CI
    /// smoke plan is committed, so byte churn would show up as diff noise).
    #[test]
    fn plan_json_round_trips_losslessly(plan in plan_strategy()) {
        let json = plan.to_json_string();
        let back = FaultPlan::from_json_str(&json)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.to_json_string(), json);
    }

    /// Plans out of the fuzzer's own generator validate against their
    /// generation bounds and survive the JSON round-trip byte-for-byte —
    /// the schema hardening and the search space agree on what a legal
    /// plan is.
    #[test]
    fn generated_plans_validate_and_round_trip(seed in any::<u64>(), picks in 1usize..5) {
        let bounds = GenBounds::default();
        let mut gen = PlanGen::new(seed, bounds);
        for _ in 0..picks {
            let plan = gen.plan();
            prop_assert!(plan.validate(bounds.nodes as usize, bounds.jobs as usize).is_ok());
            let json = plan.to_json_string();
            let back = FaultPlan::from_json_str(&json)
                .map_err(|e| TestCaseError::fail(e.to_string()))?;
            prop_assert_eq!(&back, &plan);
            prop_assert_eq!(back.to_json_string(), json);
        }
    }

    /// The delta-debugging contract, against synthetic verdict oracles
    /// (pure predicates on the plan, standing in for the expensive run
    /// harness): shrink(plan) (a) still classifies as the target verdict,
    /// (b) is no larger — by total weight and by fault count, and (c) is
    /// a fixpoint: shrinking the minimal plan returns it byte-for-byte.
    #[test]
    fn shrink_preserves_verdict_never_grows_and_is_a_fixpoint(
        seed in any::<u64>(),
        oracle_kind in 0usize..3,
    ) {
        let mut gen = PlanGen::new(seed, GenBounds::default());
        let start = gen.plan();
        // Three failure shapes: a crash anywhere, any fault on node/job 0,
        // and "two or more faults" (forces the bisection path).
        let oracle = |p: &FaultPlan| -> Verdict {
            let fails = match oracle_kind {
                0 => p.faults.iter().any(|f| matches!(f, FaultSpec::NodeCrash { .. })),
                1 => p.faults.iter().any(|f| matches!(
                    f,
                    FaultSpec::DiskErrors { node: 0, .. }
                        | FaultSpec::DiskSlow { node: 0, .. }
                        | FaultSpec::BarrierDrops { job: 0, .. }
                        | FaultSpec::NodeCrash { node: 0, .. }
                        | FaultSpec::MemPressure { node: 0, .. }
                )),
                _ => p.faults.len() >= 2,
            };
            if fails { Verdict::InvariantViolation } else { Verdict::Clean }
        };
        prop_assume!(oracle(&start) == Verdict::InvariantViolation);
        let minimal = shrink(&start, Verdict::InvariantViolation, 100_000, oracle);
        // (a) same verdict class.
        prop_assert_eq!(oracle(&minimal), Verdict::InvariantViolation);
        // (b) no larger.
        prop_assert!(plan_weight(&minimal) <= plan_weight(&start));
        prop_assert!(minimal.faults.len() <= start.faults.len());
        // (c) fixpoint.
        let again = shrink(&minimal, Verdict::InvariantViolation, 100_000, oracle);
        prop_assert_eq!(again.to_json_string(), minimal.to_json_string());
    }

    /// Backoff growth: capped exponential, monotone in the attempt number,
    /// and never above the cap.
    #[test]
    fn backoff_is_monotone_and_capped(plan in plan_strategy(), attempts in 1u32..20) {
        let r = &plan.recovery;
        let mut prev = 0;
        for a in 1..=attempts {
            let b = r.backoff_us(a);
            prop_assert!(b >= prev);
            prop_assert!(b <= r.io_backoff_cap_us);
            prev = b;
        }
    }
}
