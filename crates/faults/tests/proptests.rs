//! Property tests for the fault-plan schema: any in-range plan survives a
//! JSON round-trip byte-for-byte stable, and validation accepts exactly
//! the plans the generators produce.
//!
//! Requires the real `proptest`; the offline stub-build scratch drops this
//! file (see `.claude/skills/verify/SKILL.md`).

use agp_faults::{FaultPlan, FaultSpec};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = FaultSpec> {
    let window = (0u64..u32::MAX as u64, 0u64..u32::MAX as u64);
    prop_oneof![
        (any::<u32>(), 0.0f64..=1.0, window).prop_map(|(node, p, (from_us, until_us))| {
            FaultSpec::DiskErrors {
                node,
                p,
                from_us,
                until_us,
            }
        }),
        (any::<u32>(), any::<u32>(), 0.0f64..=1.0, window).prop_map(
            |(node, penalty, p, (from_us, until_us))| FaultSpec::DiskSlow {
                node,
                penalty_us: penalty as u64,
                p,
                from_us,
                until_us,
            }
        ),
        (any::<u32>(), 0.0f64..=1.0, window).prop_map(|(job, p, (from_us, until_us))| {
            FaultSpec::BarrierDrops {
                job,
                p,
                from_us,
                until_us,
            }
        }),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(node, at, down)| {
            FaultSpec::NodeCrash {
                node,
                at_us: at as u64,
                down_us: down as u64,
            }
        }),
        (any::<u32>(), any::<u32>(), 1u64..1_000_000).prop_map(|(node, at, pages)| {
            FaultSpec::MemPressure {
                node,
                at_us: at as u64,
                pages,
            }
        }),
    ]
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        prop::collection::vec(spec_strategy(), 0..6),
        1u32..8,
        1u64..100_000,
    )
        .prop_map(|(seed, faults, io_retries, io_backoff_us)| {
            let mut plan = FaultPlan::empty(seed);
            plan.faults = faults;
            plan.recovery.io_retries = io_retries;
            plan.recovery.io_backoff_us = io_backoff_us;
            plan
        })
}

proptest! {
    /// Serialization is lossless and stable: parse(render(p)) == p, and
    /// rendering the parsed plan reproduces the bytes exactly (the CI
    /// smoke plan is committed, so byte churn would show up as diff noise).
    #[test]
    fn plan_json_round_trips_losslessly(plan in plan_strategy()) {
        let json = plan.to_json_string();
        let back = FaultPlan::from_json_str(&json).map_err(TestCaseError::fail)?;
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.to_json_string(), json);
    }

    /// Backoff growth: capped exponential, monotone in the attempt number,
    /// and never above the cap.
    #[test]
    fn backoff_is_monotone_and_capped(plan in plan_strategy(), attempts in 1u32..20) {
        let r = &plan.recovery;
        let mut prev = 0;
        for a in 1..=attempts {
            let b = r.backoff_us(a);
            prop_assert!(b >= prev);
            prop_assert!(b <= r.io_backoff_cap_us);
            prev = b;
        }
    }
}
