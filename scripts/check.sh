#!/usr/bin/env bash
# Tier-1 gate: everything CI (and a reviewer) requires before merge.
# Run from the workspace root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy -- -D warnings
# Cross-crate static analysis: token + dataflow determinism rules over
# every workspace crate in one load (agp-lint lints its own source here
# too, via its reviewed [package.metadata.agp-lint] allow list), the
# parallelism-readiness rules on the worker-pool fan-out crates, and the
# ObsEvent emit/handle protocol check. The SARIF report is uploaded by
# CI as a code-scanning artifact.
cargo run --release -p agp-lint -- --deny-warnings --sarif agp-lint.sarif
# Self-check: the linter's own crate must also lint clean stand-alone
# (its allow list is scoped to the rule tables; fixtures are out of scope).
cargo run --release -p agp-lint -- --deny-warnings --root crates/lint
# The `agp lint` subcommand must stay in lockstep with the standalone
# binary: same clean verdict, byte-identical --explain text.
cargo run --release -p agp-cli -- lint --deny-warnings
diff <(cargo run --release -q -p agp-cli -- lint --explain nondet-iter) \
  crates/lint/fixtures/explain-nondet-iter.golden
# Parity gate + wall-clock regression gate: fails when an experiment runs
# past the band of the committed BENCH_agp.json baseline. After a real
# speedup (or on a new reference machine), refresh the baseline by
# committing the rewritten BENCH_agp.json from a quiet run; to refresh
# the parity golden itself, rerun with --update-golden (which also skips
# the wall gate for that run).
cargo run --release -p agp-cli -- report --check
# BENCH_agp.json must stay on bench schema v2 (run metadata + per-span
# host-time aggregates). The report step above regenerates it, so drift
# here means the writer and the committed shape disagree.
grep -q '"schema_version": 2' BENCH_agp.json
# Not just the key: the spans object must carry real per-span cells. A
# bare `"spans": {}` (what a stale or profiler-bypassing writer emits)
# has the opening brace but no aggregates, so pin a cell field too.
grep -q '"spans": {' BENCH_agp.json
grep -q '"total_ns":' BENCH_agp.json
grep -q '"self_ns":' BENCH_agp.json
# Fan-out determinism gate: the registry sharded over 2 workers must
# produce a byte-identical parity manifest. The sharded pass records its
# sweep wall under registry.jobs2 next to the serial pass's
# registry.jobs1, and --check holds both to the same one-sided
# wall-clock band as every per-experiment row.
cargo run --release -p agp-cli -- report --check --jobs 2 --out report.jobs2.json
diff report.json report.jobs2.json
grep -q '"registry.jobs1"' BENCH_agp.json
grep -q '"registry.jobs2"' BENCH_agp.json
# Live-monitor smoke: a sharded, monitored run must stream
# MetricsSnapshot JSONL (uploaded by CI as an artifact) while leaving
# the rendered results untouched.
cargo run --release -p agp-cli -- run moreira --scale quick --jobs 2 --progress \
  --snapshot-out snapshot.jsonl > /dev/null
test -s snapshot.jsonl
# Self-profiler smoke: span table, flamegraph export, Prometheus text.
cargo run --release -p agp-cli -- perf fig6 \
  --json perf.json --collapsed perf.collapsed --prometheus perf.prom
cargo run --release -p agp-cli -- explain fig9 --policy so --against orig \
  --json explain.json --bench-out BENCH_agp.json
cargo run --release -p agp-cli -- chaos --plan plans/smoke.json --verify \
  --check-invariants --events chaos.jsonl --bench-out BENCH_agp.json
# Flight-recorder transparency: arming the black box on a fault-free run
# must not perturb the simulation — the event stream stays byte-identical
# to the unarmed baseline, and a clean run writes no incident dump.
rm -f clean-incident.json incident.json
cargo run --release -p agp-cli -- chaos --plan plans/smoke.json \
  --check-invariants --flight-recorder --incident-out clean-incident.json \
  --events chaos.armed.jsonl
diff chaos.jsonl chaos.armed.jsonl
test ! -e clean-incident.json
# Incident pipeline smoke: the committed trip plan exhausts I/O recovery,
# the watchdog freezes the ring, the run fails (so the unnegated exit is
# asserted), the dump lands at --incident-out, and `agp postmortem`
# renders it — the JSON report is uploaded by CI as an artifact.
if cargo run --release -p agp-cli -- chaos --plan plans/trip.json \
  --flight-recorder --incident-out incident.json; then
  echo "trip plan must abort the run" >&2; exit 1
fi
test -s incident.json
cargo run --release -p agp-cli -- postmortem incident.json --json postmortem.json
grep -q '"kind": "postmortem"' postmortem.json
grep -q '"rule": "recovery_exhausted"' postmortem.json
# Chaos fuzzing smoke: a fixed-seed, small-budget fuzz pass must (a) find
# the known seed-42 hang and exit 2, (b) be byte-deterministic — a second
# same-seed pass writes an identical findings manifest (same digest) —
# and (c) the committed regression corpus must replay with every pinned
# verdict intact. Findings and their postmortems are uploaded by CI.
rm -rf findings.fuzz findings.fuzz2
set +e
cargo run --release -p agp-cli -- chaos --fuzz --seed 42 --iters 4 \
  --findings findings.fuzz --bench-out BENCH_agp.json
fuzz_code=$?
set -e
test "$fuzz_code" -eq 2
set +e
cargo run --release -p agp-cli -- chaos --fuzz --seed 42 --iters 4 \
  --findings findings.fuzz2 > /dev/null 2>&1
set -e
diff findings.fuzz/findings.json findings.fuzz2/findings.json
grep -q '"verdict":"hang"' findings.fuzz/findings.json
cargo run --release -p agp-cli -- chaos --replay-corpus plans/corpus
