#!/usr/bin/env bash
# Tier-1 gate: everything CI (and a reviewer) requires before merge.
# Run from the workspace root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy -- -D warnings
cargo run --release -p agp-lint -- --deny-warnings
cargo run --release -p agp-cli -- report --check
cargo run --release -p agp-cli -- explain fig9 --policy so --against orig \
  --json explain.json --bench-out BENCH_agp.json
cargo run --release -p agp-cli -- chaos --plan plans/smoke.json --verify \
  --check-invariants --events chaos.jsonl --bench-out BENCH_agp.json
