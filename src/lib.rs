//! # adaptive-gang-paging — facade crate
//!
//! Re-exports the whole workspace under one roof so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! ```
//! use adaptive_gang_paging as agp;
//! let _ = agp::sim::SimTime::from_secs(1);
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![forbid(unsafe_code)]

pub use agp_cluster as cluster;
pub use agp_core as core;
pub use agp_disk as disk;
pub use agp_experiments as experiments;
pub use agp_explain as explain;
pub use agp_faults as faults;
pub use agp_gang as gang;
pub use agp_mem as mem;
pub use agp_metrics as metrics;
pub use agp_net as net;
pub use agp_obs as obs;
pub use agp_perf as perf;
pub use agp_sim as sim;
pub use agp_telemetry as telemetry;
pub use agp_workload as workload;
