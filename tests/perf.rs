//! Integration tests for the `agp-perf` self-profiler's two core
//! contracts, at the level the paper artifacts depend on:
//!
//! 1. **Observation is free of side effects**: with profiling enabled,
//!    the structured event stream of a pressured gang run is
//!    byte-identical to a profiler-off run — the host clock never leaks
//!    into simulation state.
//! 2. **The accounting tiles**: per-span exclusive times sum exactly to
//!    the root span's inclusive time, and that root time matches the
//!    wall clock measured around the run to within 5%.

use adaptive_gang_paging as agp;
use agp::cluster::{ClusterConfig, ClusterSim, JobSpec, RunResult};
use agp::core::PolicyConfig;
use agp::obs::{shared, JsonlWriter, ObsLink};
use agp::sim::SimDur;
use agp::workload::{Benchmark, Class, WorkloadSpec};
use std::sync::Mutex;

/// Profiling is a process-global switch while the test harness is
/// multi-threaded, so tests that flip it must not interleave.
static GATE: Mutex<()> = Mutex::new(());

/// A memory-pressured two-node gang run — enough faults, switches, disk
/// and barrier traffic to exercise every instrumented span.
fn cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_defaults(2);
    cfg.mem_mib = 64;
    cfg.wired_mib = 24;
    cfg.quantum = SimDur::from_secs(5);
    cfg.trace_bucket = SimDur::from_secs(1);
    cfg.seed = 0x5EED_600D;
    cfg.policy = PolicyConfig::full();
    cfg.jobs = vec![
        JobSpec::new(
            "CG.A x2 #1",
            WorkloadSpec::parallel(Benchmark::CG, Class::A, 2),
        ),
        JobSpec::new(
            "CG.A x2 #2",
            WorkloadSpec::parallel(Benchmark::CG, Class::A, 2),
        ),
    ];
    cfg
}

/// Run with a JSONL event trace attached (the `agp sim --events` wiring).
fn run_traced(cfg: ClusterConfig) -> (RunResult, Vec<u8>) {
    let sink = shared(JsonlWriter::new(Vec::new()));
    let link = ObsLink::to(sink.clone());
    let mut sim = ClusterSim::new(cfg).expect("valid config");
    sim.attach_observer(&link);
    let r = sim.run().expect("run completes");
    drop(link);
    let writer = std::sync::Arc::try_unwrap(sink)
        .expect("sim dropped, sink has one owner")
        .into_inner()
        .expect("sink not poisoned");
    (r, writer.finish().expect("in-memory writer"))
}

#[test]
fn profiler_on_and_off_event_streams_are_byte_identical() {
    let _g = GATE.lock().unwrap();
    agp::perf::enable(false);
    let _ = agp::perf::take_report();
    let (r_off, t_off) = run_traced(cfg());
    let off_rep = agp::perf::take_report();
    assert!(
        off_rep.spans.is_empty(),
        "profiler-off run must record nothing"
    );

    agp::perf::enable(true);
    let (r_on, t_on) = run_traced(cfg());
    agp::perf::enable(false);
    let rep = agp::perf::take_report();

    assert!(!t_off.is_empty(), "a pressured gang run must emit events");
    assert_eq!(r_off.makespan, r_on.makespan);
    assert_eq!(r_off.switches, r_on.switches);
    assert_eq!(
        t_off, t_on,
        "profiling must never perturb the simulated event stream"
    );
    // …and the profiled run actually profiled, or the test is vacuous.
    assert!(
        rep.spans.len() >= 8,
        "a full-policy pressured run should light up most spans, got {:?}",
        rep.spans.iter().map(|a| a.span.name()).collect::<Vec<_>>()
    );
    assert_eq!(rep.unbalanced_exits, 0);
}

#[test]
fn span_breakdown_tiles_root_and_wall_within_5pct() {
    let _g = GATE.lock().unwrap();
    agp::perf::enable(true);
    let _ = agp::perf::take_report();
    let sim = ClusterSim::new(cfg()).expect("valid config");
    let t0 = std::time::Instant::now();
    let r = sim.run().expect("run completes");
    let wall_ns = t0.elapsed().as_nanos() as u64;
    agp::perf::enable(false);
    let rep = agp::perf::take_report();

    assert!(r.events > 0);
    assert_eq!(rep.unbalanced_exits, 0);
    let root = rep
        .spans
        .iter()
        .find(|a| a.span == agp::perf::Span::Run)
        .expect("root span recorded");
    assert_eq!(root.count, 1);
    // Exact tiling: exclusive times sum to the root's inclusive time.
    assert_eq!(
        rep.total_self_ns(),
        root.incl_ns,
        "per-span self times must tile the root span exactly"
    );
    // Collapsed-stack weights are the same partition of the same total.
    let collapsed_total: u64 = rep.paths.iter().map(|p| p.self_ns).sum();
    assert_eq!(collapsed_total, root.incl_ns);
    // The root span covers everything inside run(); the wall clock around
    // the call adds only scope setup/teardown, so they agree closely.
    assert!(root.incl_ns <= wall_ns);
    assert!(
        (wall_ns - root.incl_ns) as f64 <= 0.05 * wall_ns as f64,
        "root span {} ns should be within 5% of measured wall {} ns",
        root.incl_ns,
        wall_ns
    );
}
