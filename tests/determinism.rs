//! The byte-identical-replay regression test for the determinism sweep:
//! after replacing every `HashMap`/`HashSet` in sim-state crates with
//! ordered containers (enforced by `agp-lint`), two runs from the same seed
//! must produce byte-identical `--events` JSONL — with the invariant sweep
//! enabled, proving zero conservation/coherence violations along the way.

use adaptive_gang_paging::cluster::{ClusterConfig, ClusterSim, JobSpec, RunResult};
use adaptive_gang_paging::core::PolicyConfig;
use adaptive_gang_paging::faults::FaultPlan;
use adaptive_gang_paging::obs::{shared, JsonlWriter, ObsLink};
use adaptive_gang_paging::sim::SimDur;
use adaptive_gang_paging::workload::{Benchmark, Class, WorkloadSpec};

/// Two CG jobs (seed-sensitive random access component) across two nodes:
/// the configuration most likely to surface iteration-order divergence.
fn cfg(seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_defaults(2);
    cfg.mem_mib = 64;
    cfg.wired_mib = 24;
    cfg.quantum = SimDur::from_secs(5);
    cfg.trace_bucket = SimDur::from_secs(1);
    cfg.seed = seed;
    cfg.check_invariants = true;
    cfg.policy = PolicyConfig::full();
    cfg.jobs = vec![
        JobSpec::new(
            "CG.A x2 #1",
            WorkloadSpec::parallel(Benchmark::CG, Class::A, 2),
        ),
        JobSpec::new(
            "CG.A x2 #2",
            WorkloadSpec::parallel(Benchmark::CG, Class::A, 2),
        ),
    ];
    cfg
}

/// Run with a JSONL event trace attached, exactly as `agp sim --events
/// --check-invariants` wires it.
fn run_traced(cfg: ClusterConfig) -> (RunResult, Vec<u8>) {
    let sink = shared(JsonlWriter::new(Vec::new()));
    let link = ObsLink::to(sink.clone());
    let mut sim = ClusterSim::new(cfg).expect("valid config");
    sim.attach_observer(&link);
    let r = sim
        .run()
        .expect("run completes with zero invariant violations");
    drop(link);
    let writer = std::sync::Arc::try_unwrap(sink)
        .expect("sim dropped, sink has one owner")
        .into_inner()
        .expect("sink not poisoned");
    (r, writer.finish().expect("in-memory writer"))
}

#[test]
fn same_seed_event_streams_are_byte_identical() {
    let (ra, ta) = run_traced(cfg(0x5EED_600D));
    let (rb, tb) = run_traced(cfg(0x5EED_600D));
    assert!(!ta.is_empty(), "a pressured gang run must emit events");
    assert!(
        ra.invariant_checks > 0 && ra.invariant_checks == rb.invariant_checks,
        "both runs swept invariants identically ({} vs {})",
        ra.invariant_checks,
        rb.invariant_checks
    );
    assert_eq!(ra.makespan, rb.makespan);
    assert_eq!(ta, tb, "identical seeds must replay byte-identically");
}

#[test]
fn chaos_same_seed_event_streams_are_byte_identical() {
    // The fault injector is part of the replay surface: the smoke plan's
    // probabilistic disk errors, barrier drops, node crash, and the
    // recovery machinery (retry/backoff, requeue) must all derive from
    // the seeded streams, so two identical-seed chaos runs replay
    // byte-for-byte — with the invariant sweep enabled throughout.
    let chaos = |seed| {
        let mut c = cfg(seed);
        c.faults = Some(FaultPlan::smoke(seed));
        c
    };
    let (ra, ta) = run_traced(chaos(0x5EED_600D));
    let (rb, tb) = run_traced(chaos(0x5EED_600D));
    assert!(
        ra.invariant_checks > 0 && ra.invariant_checks == rb.invariant_checks,
        "both chaos runs swept invariants identically ({} vs {})",
        ra.invariant_checks,
        rb.invariant_checks
    );
    assert_eq!(ra.makespan, rb.makespan);
    assert_eq!(ta, tb, "identical seeds must replay byte-identically");
    // And the plan actually did something, or the test is vacuous.
    let text = String::from_utf8_lossy(&ta);
    assert!(
        text.contains("\"ev\":\"disk_error\"") || text.contains("\"ev\":\"disk_slowdown\""),
        "the smoke plan must inject observable faults"
    );
}

#[test]
fn different_seeds_give_different_streams() {
    // Guards against the trace accidentally not covering the seeded state:
    // if seed changes don't move the bytes, the identity test above is
    // vacuous.
    let (_, ta) = run_traced(cfg(1));
    let (_, tb) = run_traced(cfg(2));
    assert_ne!(ta, tb, "CG's random component must make traces diverge");
}
