//! End-to-end integration tests across the whole stack: cluster runs at
//! quick scale asserting the paper's directional results.

use adaptive_gang_paging::cluster::{self, ClusterConfig, JobSpec, RunResult, ScheduleMode};
use adaptive_gang_paging::core::PolicyConfig;
use adaptive_gang_paging::experiments::common::quick_serial;
use adaptive_gang_paging::metrics::{overhead_pct, reduction_pct};
use adaptive_gang_paging::sim::SimDur;
use adaptive_gang_paging::workload::{Benchmark, Class, WorkloadSpec};

/// The standard quick-scale pressure geometry: one working set fits the
/// node, two do not (per-benchmark, via the experiments crate).
fn serial_cfg(bench: Benchmark, policy: PolicyConfig, mode: ScheduleMode) -> ClusterConfig {
    quick_serial(bench).config(policy, mode)
}

fn run(cfg: ClusterConfig) -> RunResult {
    cluster::run(cfg).expect("run")
}

#[test]
fn every_benchmark_full_policy_beats_original() {
    for bench in Benchmark::ALL {
        let orig = run(serial_cfg(
            bench,
            PolicyConfig::original(),
            ScheduleMode::Gang,
        ));
        let full = run(serial_cfg(bench, PolicyConfig::full(), ScheduleMode::Gang));
        assert!(
            full.makespan <= orig.makespan,
            "{bench}: so/ao/ai/bg {} must not lose to orig {}",
            full.makespan,
            orig.makespan
        );
    }
}

#[test]
fn batch_is_the_floor() {
    for policy in PolicyConfig::paper_combinations() {
        let gang = run(serial_cfg(Benchmark::LU, policy, ScheduleMode::Gang));
        let batch = run(serial_cfg(Benchmark::LU, policy, ScheduleMode::Batch));
        assert!(
            batch.makespan <= gang.makespan,
            "{}: batch {} must lower-bound gang {}",
            policy,
            batch.makespan,
            gang.makespan
        );
    }
}

#[test]
fn headline_reduction_is_substantial() {
    // The abstract: "these new adaptive paging mechanisms can reduce the
    // job switching time significantly (up to 90%)".
    let batch = run(serial_cfg(
        Benchmark::LU,
        PolicyConfig::original(),
        ScheduleMode::Batch,
    ));
    let orig = run(serial_cfg(
        Benchmark::LU,
        PolicyConfig::original(),
        ScheduleMode::Gang,
    ));
    let full = run(serial_cfg(
        Benchmark::LU,
        PolicyConfig::full(),
        ScheduleMode::Gang,
    ));
    let red = reduction_pct(orig.makespan, full.makespan, batch.makespan);
    assert!(red > 50.0, "expected a large reduction, got {red:.1}%");
}

#[test]
fn selective_eliminates_false_evictions() {
    let orig = run(serial_cfg(
        Benchmark::LU,
        PolicyConfig::original(),
        ScheduleMode::Gang,
    ));
    let so = run(serial_cfg(
        Benchmark::LU,
        PolicyConfig::so(),
        ScheduleMode::Gang,
    ));
    let fe_orig = orig.total_engine_stats().false_evictions;
    let fe_so = so.total_engine_stats().false_evictions;
    assert!(
        fe_orig > 0,
        "the original kernel must exhibit §3.1 false evictions"
    );
    assert!(
        fe_so * 10 < fe_orig,
        "selective must (nearly) eliminate them: {fe_so} vs {fe_orig}"
    );
}

#[test]
fn aggressive_compacts_page_outs_into_switches() {
    let so = run(serial_cfg(
        Benchmark::LU,
        PolicyConfig::so(),
        ScheduleMode::Gang,
    ));
    let so_ao = run(serial_cfg(
        Benchmark::LU,
        PolicyConfig::so_ao(),
        ScheduleMode::Gang,
    ));
    let s = so_ao.total_engine_stats();
    assert!(s.aggressive_evictions > 0, "ao must evict at switches");
    // With ao, demand-time reclaim shrinks relative to so alone.
    assert!(
        s.reclaim_calls <= so.total_engine_stats().reclaim_calls,
        "aggressive page-out must reduce demand reclaim"
    );
}

#[test]
fn adaptive_page_in_records_and_replays() {
    let r = run(serial_cfg(
        Benchmark::LU,
        PolicyConfig::full(),
        ScheduleMode::Gang,
    ));
    let s = r.total_engine_stats();
    assert!(s.recorded_pages > 0);
    assert!(s.replayed_pages > 0);
    assert!(s.replayed_pages + s.replay_skipped <= s.recorded_pages);
    // The run-length record replays as bulk reads: page-in requests must
    // be far fewer than pages paged in.
    let reads: u64 = r.nodes.iter().map(|n| n.disk.read_requests).sum();
    assert!(
        reads * 8 < r.total_pages_in(),
        "bulk page-in: {} requests moved {} pages",
        reads,
        r.total_pages_in()
    );
}

#[test]
fn background_writing_cleans_before_switches() {
    let r = run(serial_cfg(
        Benchmark::LU,
        PolicyConfig::so_ao_bg(),
        ScheduleMode::Gang,
    ));
    let cleaned: u64 = r.nodes.iter().map(|n| n.bg_cleaned_pages).sum();
    assert!(cleaned > 0, "bg writer must run in its window");
}

#[test]
fn determinism_across_identical_runs() {
    let a = run(serial_cfg(
        Benchmark::CG,
        PolicyConfig::full(),
        ScheduleMode::Gang,
    ));
    let b = run(serial_cfg(
        Benchmark::CG,
        PolicyConfig::full(),
        ScheduleMode::Gang,
    ));
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.events, b.events);
    assert_eq!(a.total_pages_in(), b.total_pages_in());
    assert_eq!(a.total_pages_out(), b.total_pages_out());
}

#[test]
fn seeds_change_scattered_workloads_but_not_correctness() {
    let mut c1 = serial_cfg(Benchmark::CG, PolicyConfig::full(), ScheduleMode::Gang);
    let mut c2 = c1.clone();
    c1.seed = 1;
    c2.seed = 2;
    let a = run(c1);
    let b = run(c2);
    // Different seeds shuffle CG's scattered touches; both complete all
    // iterations.
    let want = WorkloadSpec::serial(Benchmark::CG, Class::A).iterations();
    assert_eq!(a.jobs[0].iterations, want);
    assert_eq!(b.jobs[0].iterations, want);
}

#[test]
fn parallel_ranks_synchronize_through_barriers() {
    let mut cfg = ClusterConfig::paper_defaults(2);
    cfg.mem_mib = 128;
    cfg.wired_mib = 104;
    cfg.quantum = SimDur::from_secs(10);
    cfg.policy = PolicyConfig::full();
    let w = WorkloadSpec::parallel(Benchmark::LU, Class::A, 2);
    cfg.jobs = vec![JobSpec::new("j1", w), JobSpec::new("j2", w)];
    let r = run(cfg);
    // BSP coupling: both ranks complete the same iteration count, and the
    // job finishes only when both are done.
    for j in &r.jobs {
        assert_eq!(j.iterations, w.iterations());
    }
    assert_eq!(r.nodes.len(), 2);
    // Under gang scheduling both nodes page (each hosts one rank per job).
    assert!(r.nodes[0].disk.pages_read > 0);
    assert!(r.nodes[1].disk.pages_read > 0);
}

#[test]
fn sp_quantum_override_reaches_the_scheduler() {
    let mut cfg = serial_cfg(Benchmark::SP, PolicyConfig::original(), ScheduleMode::Gang);
    cfg.jobs[0].quantum = Some(SimDur::from_secs(14));
    let r = run(cfg);
    assert!(r.switches > 0);
}

#[test]
fn overhead_formulas_match_run_results() {
    let batch = run(serial_cfg(
        Benchmark::MG,
        PolicyConfig::original(),
        ScheduleMode::Batch,
    ));
    let orig = run(serial_cfg(
        Benchmark::MG,
        PolicyConfig::original(),
        ScheduleMode::Gang,
    ));
    let ov = overhead_pct(orig.makespan, batch.makespan);
    assert!((0.0..100.0).contains(&ov));
    // Consistency: reduction of orig vs itself is zero.
    assert_eq!(
        reduction_pct(orig.makespan, orig.makespan, batch.makespan),
        0.0
    );
}

#[test]
fn memory_is_fully_reclaimed_after_completion() {
    // Jobs exit -> kernels must return to an all-free state. We verify via
    // a fresh run whose node reports show swap fully drained (no leak
    // means pages_out can exceed swap size over time without exhaustion).
    let r = run(serial_cfg(
        Benchmark::IS,
        PolicyConfig::full(),
        ScheduleMode::Gang,
    ));
    assert!(r.total_pages_out() < 10_000_000, "sanity");
}
