//! Integration tests over the experiment harness: every registered paper
//! experiment must run at quick scale and exhibit the claims its figure
//! makes.

use adaptive_gang_paging::experiments::{all_experiments, find, Scale};

#[test]
fn every_registered_experiment_runs_at_quick_scale() {
    for e in all_experiments() {
        let out = (e.runner)(Scale::Quick).unwrap_or_else(|err| panic!("{} failed: {err}", e.id));
        assert_eq!(out.id, e.id);
        assert!(!out.tables.is_empty(), "{} produced no tables", e.id);
        for t in &out.tables {
            assert!(!t.is_empty(), "{}: empty table '{}'", e.id, t.title());
        }
        assert!(!out.notes.is_empty(), "{} produced no notes", e.id);
    }
}

#[test]
fn fig6_traces_show_compaction() {
    let out = (find("fig6").unwrap().runner)(Scale::Quick).unwrap();
    assert_eq!(out.traces.len(), 4, "four policy panels");
    let t = &out.tables[0];
    let active_orig: usize = t.cell(0, 4).parse().unwrap();
    let active_full: usize = t.cell(3, 4).parse().unwrap();
    assert!(
        active_full <= active_orig,
        "adaptive paging must compact activity: {active_full} vs {active_orig} buckets"
    );
    let vol_orig: u64 = t.cell(0, 2).parse().unwrap();
    let vol_so: u64 = t.cell(1, 2).parse().unwrap();
    assert!(vol_so <= vol_orig, "selective reduces paging volume");
}

#[test]
fn fig7_reduction_column_is_positive_under_pressure() {
    let out = (find("fig7").unwrap().runner)(Scale::Quick).unwrap();
    let c = &out.tables[2];
    // At least LU and MG (big working sets) must show strong reductions.
    for r in 0..c.len() {
        let bench = c.cell(r, 0);
        let red: f64 = c.cell(r, 1).parse().unwrap();
        if bench == "LU" || bench == "MG" {
            assert!(
                red > 30.0,
                "{bench}: expected a strong reduction, got {red}"
            );
        }
        assert!(
            red > -20.0,
            "{bench}: adaptive must not badly regress ({red})"
        );
    }
}

#[test]
fn fig9_so_and_full_beat_original_everywhere() {
    let out = (find("fig9").unwrap().runner)(Scale::Quick).unwrap();
    let c = &out.tables[2]; // reduction table: ai, so, so/ao, so/ao/bg, full
    for r in 0..c.len() {
        let so: f64 = c.cell(r, 2).parse().unwrap();
        let full: f64 = c.cell(r, 5).parse().unwrap();
        assert!(so > 0.0, "{}: so reduction {so}", c.cell(r, 0));
        assert!(full > 0.0, "{}: full reduction {full}", c.cell(r, 0));
    }
}

#[test]
fn moreira_motivation_shows_memory_cliff() {
    let out = (find("moreira").unwrap().runner)(Scale::Quick).unwrap();
    let ratio: f64 = out.tables[1].cell(0, 0).parse().unwrap();
    assert!(
        ratio > 1.3,
        "128 MB must be much slower than 256 MB: {ratio}"
    );
}

#[test]
fn bg_ablation_rewrite_cost_grows_with_window() {
    let out = (find("bgablate").unwrap().runner)(Scale::Quick).unwrap();
    let t = &out.tables[0];
    let first_out: u64 = t.cell(0, 3).parse().unwrap();
    let last_out: u64 = t.cell(t.len() - 1, 3).parse().unwrap();
    assert!(last_out >= first_out, "wider bg windows cannot write less");
}

#[test]
fn quantum_sweep_adaptive_wins_at_short_quanta() {
    let out = (find("quantum").unwrap().runner)(Scale::Quick).unwrap();
    let t = &out.tables[0];
    let ov_orig: f64 = t.cell(0, 1).parse().unwrap();
    let ov_full: f64 = t.cell(0, 2).parse().unwrap();
    assert!(ov_full <= ov_orig + 1e-9);
}

#[test]
fn unknown_experiment_is_rejected() {
    assert!(find("fig99").is_none());
}
