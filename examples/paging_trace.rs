//! Paging-activity traces (the paper's Fig. 6), printed as terminal
//! sparklines.
//!
//! ```text
//! cargo run --release --example paging_trace            # quick scale
//! cargo run --release --example paging_trace -- paper   # full 4-node LU.C
//! ```
//!
//! Four panels, like the paper's figure: the unmodified kernel spreads
//! paging over each whole quantum with page-ins and page-outs overlapping
//! (interfering); each added mechanism compacts the same work into
//! sharper, earlier bursts.

use adaptive_gang_paging::cluster::{self, ScheduleMode};
use adaptive_gang_paging::core::PolicyConfig;
use adaptive_gang_paging::experiments::common::Scenario;
use adaptive_gang_paging::metrics::report::sparkline;
use adaptive_gang_paging::sim::SimDur;
use adaptive_gang_paging::workload::{Benchmark, Class, WorkloadSpec};

fn main() -> Result<(), String> {
    let paper_scale = std::env::args().nth(1).as_deref() == Some("paper");

    let scenario = if paper_scale {
        Scenario::pair(
            4,
            724,
            WorkloadSpec::parallel(Benchmark::LU, Class::C, 4),
            SimDur::from_mins(5),
        )
    } else {
        let mut s = Scenario::pair(
            2,
            104,
            WorkloadSpec::parallel(Benchmark::LU, Class::A, 2),
            SimDur::from_secs(10),
        );
        s.mem_mib = 128;
        s
    };

    let policies = [
        PolicyConfig::original(),
        PolicyConfig::so(),
        PolicyConfig::so_ao(),
        PolicyConfig::full(),
    ];

    println!(
        "two gang-scheduled {} jobs, {} nodes, quantum {}\n",
        scenario.workload, scenario.nodes, scenario.quantum
    );
    for policy in policies {
        let r = cluster::run(scenario.config(policy, ScheduleMode::Gang))?;
        let tr = &r.nodes[0].trace;
        println!("── {} (completed in {}) ──", policy.label(), r.makespan);
        println!("  in : {}", sparkline(tr.ins()));
        println!("  out: {}", sparkline(tr.outs()));
        println!(
            "  {} pages in / {} out over {} active buckets; {} buckets with read/write overlap\n",
            tr.total_in(),
            tr.total_out(),
            tr.active_buckets(),
            tr.overlap_buckets()
        );
    }
    println!(
        "reading the panels (paper §4): orig = low-rate paging smeared across the quantum \
         with reads and writes interfering; so = same switches, a fraction of the volume \
         (no false evictions); so/ao = page-outs compacted into one burst at the switch; \
         so/ao/ai/bg = sharp page-in spike at each quantum start, writes pre-flushed by \
         the background writer."
    );
    Ok(())
}
