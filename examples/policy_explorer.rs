//! Sweep every policy combination over a chosen benchmark — the paper's
//! Fig. 9 methodology as a reusable tool.
//!
//! ```text
//! cargo run --release --example policy_explorer            # LU, quick
//! cargo run --release --example policy_explorer -- MG      # another code
//! cargo run --release --example policy_explorer -- SP paper
//! ```

use adaptive_gang_paging::cluster::{self, ScheduleMode};
use adaptive_gang_paging::core::PolicyConfig;
use adaptive_gang_paging::experiments::common::{quick_serial, Scenario};
use adaptive_gang_paging::metrics::{overhead_pct, reduction_pct, Table};
use adaptive_gang_paging::sim::SimDur;
use adaptive_gang_paging::workload::{Benchmark, Class, WorkloadSpec};

fn main() -> Result<(), String> {
    let bench: Benchmark = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "LU".into())
        .parse()?;
    let paper_scale = std::env::args().nth(2).as_deref() == Some("paper");

    let scenario = if paper_scale {
        Scenario::pair(
            1,
            574,
            WorkloadSpec::serial(bench, Class::B),
            SimDur::from_mins(5),
        )
    } else {
        quick_serial(bench)
    };

    let batch = cluster::run(scenario.config(PolicyConfig::original(), ScheduleMode::Batch))?;
    let tb = batch.makespan;

    let mut table = Table::new(
        format!(
            "policy ladder: 2 × {} on {} node(s), quantum {}",
            scenario.workload, scenario.nodes, scenario.quantum
        ),
        &[
            "policy",
            "makespan",
            "overhead %",
            "reduction %",
            "false evictions",
            "replayed",
        ],
    );
    let mut t_orig = None;
    for policy in PolicyConfig::paper_combinations() {
        let r = cluster::run(scenario.config(policy, ScheduleMode::Gang))?;
        let t = r.makespan;
        if t_orig.is_none() {
            t_orig = Some(t);
        }
        let es = r.total_engine_stats();
        table.row(vec![
            policy.label(),
            t.to_string(),
            format!("{:.1}", overhead_pct(t, tb)),
            format!("{:.1}", reduction_pct(t_orig.unwrap(), t, tb)),
            es.false_evictions.to_string(),
            es.replayed_pages.to_string(),
        ]);
    }
    println!("batch baseline: {tb}\n");
    println!("{table}");
    println!(
        "the paper's reading (§4.3): adaptive page-in and selective page-out are the two\n\
         strongest single mechanisms; aggressive page-out compacts the switch further but\n\
         can overshoot on serial runs, which background writing repairs."
    );
    Ok(())
}
