//! A mixed-workload gang-scheduled cluster: three different parallel
//! jobs timesharing four nodes, the general case the Ousterhout matrix
//! exists for.
//!
//! ```text
//! cargo run --release --example cluster_gang
//! ```
//!
//! Unlike the paper's two-identical-instances experiments, this runs a
//! compute-bound LU, an irregular CG, and a sort-and-communicate IS
//! against each other, and shows per-job completions, per-node paging,
//! and the engine counters under both the original and the adaptive
//! kernel.

use adaptive_gang_paging::cluster::{self, ClusterConfig, JobSpec, ScheduleMode};
use adaptive_gang_paging::core::PolicyConfig;
use adaptive_gang_paging::sim::SimDur;
use adaptive_gang_paging::workload::{Benchmark, Class, WorkloadSpec};

fn config(policy: PolicyConfig) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_defaults(4);
    cfg.mem_mib = 256;
    cfg.wired_mib = 208; // 48 MiB usable per node: any one rank fits, three don't
    cfg.quantum = SimDur::from_secs(15);
    cfg.policy = policy;
    cfg.mode = ScheduleMode::Gang;
    cfg.jobs = vec![
        JobSpec::new(
            "LU.A x4",
            WorkloadSpec::parallel(Benchmark::LU, Class::A, 4),
        ),
        JobSpec::new(
            "CG.A x4",
            WorkloadSpec::parallel(Benchmark::CG, Class::A, 4),
        ),
        JobSpec::new(
            "IS.A x4",
            WorkloadSpec::parallel(Benchmark::IS, Class::A, 4),
        ),
    ];
    cfg
}

fn main() -> Result<(), String> {
    for policy in [PolicyConfig::original(), PolicyConfig::full()] {
        let r = cluster::run(config(policy))?;
        println!("═══ policy {} ═══", r.policy);
        println!(
            "makespan {}  ({} gang switches, {} sim events)",
            r.makespan, r.switches, r.events
        );
        for j in &r.jobs {
            println!(
                "  {:<10} finished at {}  ({} iterations)",
                j.name, j.completion, j.iterations
            );
        }
        for (i, n) in r.nodes.iter().enumerate() {
            println!(
                "  node{i}: {:>8} pages in, {:>8} out, disk busy {}, {} seeks",
                n.disk.pages_read, n.disk.pages_written, n.disk.busy, n.disk.seeks
            );
        }
        let es = r.total_engine_stats();
        println!(
            "  engine: {} major faults, {} false evictions, {} recorded, {} replayed\n",
            es.major_faults, es.false_evictions, es.recorded_pages, es.replayed_pages
        );
    }
    println!(
        "note: all three jobs finish sooner under so/ao/ai/bg because every switch\n\
         moves each rank's working set as a few large sequential transfers instead\n\
         of a quantum-long trickle of interfering reads and writes."
    );
    Ok(())
}
