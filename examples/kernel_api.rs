//! The paper's kernel API, driven directly — no cluster, no clock.
//!
//! ```text
//! cargo run --release --example kernel_api
//! ```
//!
//! §3.5 defines the interface the user-level gang scheduler calls through
//! `/dev/kmem`: `adaptive_page_out(out_pid, in_pid, wss)`,
//! `adaptive_page_in(in_pid)`, `start_bgwrite(inpid)`, `stop_bgwrite()`.
//! This example plays the role of that scheduler by hand: it builds a
//! node kernel, runs two synthetic processes through a couple of job
//! switches, and prints the I/O plans each call produces — useful for
//! understanding the mechanisms before the full simulator gets involved.

use adaptive_gang_paging::core::{PagingEngine, PolicyConfig};
use adaptive_gang_paging::mem::{Kernel, PageNum, ProcId, VmParams};
use adaptive_gang_paging::sim::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A node with 1024 frames (4 MiB) of which 128 are wired.
    let params = VmParams::for_frames(1024, 128);
    let mut kern = Kernel::new(params, 1 << 16);
    let mut engine = PagingEngine::new(PolicyConfig::full());

    let a = ProcId(1);
    let b = ProcId(2);
    kern.register_proc(a, 700);
    kern.register_proc(b, 700);

    // ── A's first quantum: it writes 600 pages (think: array init). ──
    let mut t = SimTime::from_secs(1);
    engine.set_running(Some(a));
    kern.quantum_started(a)?;
    for p in 0..600u32 {
        if !matches!(
            kern.touch(a, PageNum(p), true, t)?,
            adaptive_gang_paging::mem::TouchOutcome::Hit
        ) {
            let plan = engine.on_fault(&mut kern, a, PageNum(p), t)?;
            assert!(plan.is_io_free(), "first touches are zero fills");
            // The faulting instruction restarts: the page is now resident,
            // and this touch applies the write (dirtying the page).
            kern.touch(a, PageNum(p), true, t)?;
        }
    }
    println!(
        "after A's quantum: A rss={} pages, {} dirty, free={} frames",
        kern.proc(a)?.rss(),
        kern.proc(a)?.pt.dirty_resident(),
        kern.free_frames()
    );

    // ── start_bgwrite(A) near the end of A's quantum (§3.4). ──
    engine.start_bgwrite(a);
    let mut bg_pages = 0u64;
    for _ in 0..4 {
        let ext = engine.bgwrite_tick(&mut kern)?;
        bg_pages += ext.iter().map(|e| e.len).sum::<u64>();
    }
    engine.stop_bgwrite();
    println!("background writer pre-flushed {bg_pages} dirty pages before the switch");

    // ── The switch A → B: the gang scheduler's kernel calls (§3.5). ──
    t = SimTime::from_secs(300);
    let out_plan = engine.adaptive_page_out(&mut kern, a, b, None)?;
    println!(
        "adaptive_page_out(A, B): wrote {} pages in {} extent(s) — oldest-first from A only",
        out_plan.write_pages(),
        out_plan.writes.len()
    );
    kern.quantum_started(b)?;
    let in_plan = engine.adaptive_page_in(&mut kern, b, t)?;
    println!(
        "adaptive_page_in(B): {} pages to read (first switch: B has no record yet)",
        in_plan.read_pages()
    );

    // ── B's quantum: faults its working set in; A is the victim. ──
    for p in 0..600u32 {
        if !matches!(
            kern.touch(b, PageNum(p), true, t)?,
            adaptive_gang_paging::mem::TouchOutcome::Hit
        ) {
            engine.on_fault(&mut kern, b, PageNum(p), t)?;
            kern.touch(b, PageNum(p), true, t)?;
        }
    }
    println!(
        "after B's fault-in: A rss={}, B rss={}, {} pages recorded for A's return",
        kern.proc(a)?.rss(),
        kern.proc(b)?.rss(),
        engine.stats().recorded_pages
    );

    // ── The switch back B → A: now the record pays off. ──
    t = SimTime::from_secs(600);
    let out_plan = engine.adaptive_page_out(&mut kern, b, a, None)?;
    kern.quantum_started(a)?;
    let in_plan = engine.adaptive_page_in(&mut kern, a, t)?;
    println!(
        "switch back: adaptive_page_out wrote {} pages; adaptive_page_in streams {} pages \
         back in {} extent(s)",
        out_plan.write_pages(),
        in_plan.read_pages(),
        in_plan.reads.len()
    );
    println!(
        "A resumes with rss={} — its working set restored by bulk block reads, zero \
         false evictions ({} total)",
        kern.proc(a)?.rss(),
        engine.stats().false_evictions
    );

    kern.check_invariants()
        .map_err(|e| format!("invariant: {e}"))?;
    println!(
        "\nkernel invariants verified; recorder occupies {} bytes",
        engine.recorder_bytes()
    );
    Ok(())
}
