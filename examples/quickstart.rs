//! Quickstart: gang-schedule two memory-hungry jobs on one node and
//! measure what adaptive paging buys at the job switches.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the paper's experiment in miniature: two LU instances
//! timeshare a node whose memory holds either job's working set but not
//! both, so every 10-second quantum boundary forces a working-set swap
//! through the paging disk. We run the back-to-back `batch` baseline, the
//! unmodified kernel (`orig`), and the full adaptive configuration
//! (`so/ao/ai/bg`), then report the paper's two metrics.

use adaptive_gang_paging::cluster::{self, ClusterConfig, JobSpec, ScheduleMode};
use adaptive_gang_paging::core::PolicyConfig;
use adaptive_gang_paging::metrics::{overhead_pct, reduction_pct};
use adaptive_gang_paging::sim::SimDur;
use adaptive_gang_paging::workload::{Benchmark, Class, WorkloadSpec};

fn config(policy: PolicyConfig, mode: ScheduleMode) -> ClusterConfig {
    let workload = WorkloadSpec::serial(Benchmark::LU, Class::A);
    let mut cfg = ClusterConfig::paper_defaults(1);
    cfg.mem_mib = 128; // a small node...
    cfg.wired_mib = 64; // ...with 64 MiB usable: one 45 MB job fits, two don't
    cfg.quantum = SimDur::from_secs(10);
    cfg.policy = policy;
    cfg.mode = mode;
    cfg.jobs = vec![
        JobSpec::new("LU #1", workload),
        JobSpec::new("LU #2", workload),
    ];
    cfg
}

fn main() -> Result<(), String> {
    println!("running batch baseline, original kernel, and so/ao/ai/bg ...\n");

    let batch = cluster::run(config(PolicyConfig::original(), ScheduleMode::Batch))?;
    let orig = cluster::run(config(PolicyConfig::original(), ScheduleMode::Gang))?;
    let full = cluster::run(config(PolicyConfig::full(), ScheduleMode::Gang))?;

    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "", "makespan", "pages in", "pages out"
    );
    for (name, r) in [
        ("batch (no switches)", &batch),
        ("gang, orig", &orig),
        ("gang, so/ao/ai/bg", &full),
    ] {
        println!(
            "{:<22} {:>10} {:>12} {:>12}",
            name,
            format!("{}", r.makespan),
            r.total_pages_in(),
            r.total_pages_out()
        );
    }

    let ov_orig = overhead_pct(orig.makespan, batch.makespan);
    let ov_full = overhead_pct(full.makespan, batch.makespan);
    let red = reduction_pct(orig.makespan, full.makespan, batch.makespan);
    println!("\nswitching overhead:  orig {ov_orig:.1}%  ->  adaptive {ov_full:.1}%");
    println!("paging-overhead reduction: {red:.1}%  (the paper reports up to 90%)");

    let es = orig.total_engine_stats();
    println!(
        "\nwhy: the original kernel falsely evicted {} pages of the running job;",
        es.false_evictions
    );
    let es = full.total_engine_stats();
    println!(
        "     the adaptive kernel evicted only the outgoing job ({} false evictions),",
        es.false_evictions
    );
    println!(
        "     recorded {} flushed pages and streamed them back in bulk ({} replayed).",
        es.recorded_pages, es.replayed_pages
    );
    Ok(())
}
